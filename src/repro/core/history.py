"""Observation history for predictors.

``HistoryWindow`` stores wait-time observations in arrival order (needed for
change-point trimming, which keeps the *most recent* k observations) while
also maintaining an ascending-sorted view (needed for order-statistic
bounds).  Appends are O(1) amortized in every mode:

* Observations live in one growable numpy buffer with ``[start, end)``
  window offsets.  Appending writes one slot; bounded windows
  (``max_size``) evict by advancing ``start`` — no per-append copy, resort,
  or trim.  Dead space in front of ``start`` is reclaimed in bulk when the
  buffer fills, so the cost of keeping the window bounded is amortized over
  at least ``max_size`` appends.
* The sorted view is maintained *incrementally* in a second capacity
  buffer: values appended since the last read are folded in with in-place
  gap shifts (one ``searchsorted`` + one ``memmove`` each, no allocation),
  medium batches use a single vectorized merge, and only a batch larger
  than the measured merge-vs-resort crossover (or a change-point trim,
  which moves most of the window at once) re-sorts wholesale.  Evictions
  from a bounded window are folded the same way — a pending-deletion list
  of the evicted values, removed by in-place shifts at the next read — so
  a sliding window no longer pays a full resort per read.

This matches the predictors' access pattern — many appends between epoch
refits, one sorted read per refit — and keeps full-trace replays linear-ish
instead of quadratic.  In the sparse-trace regime (one or two observations
per refit epoch) a refit's sorted-view maintenance is one or two scalar
inserts, which is what makes the order-statistic predictors' refits
incremental rather than O(n log n).

**Rank subscriptions** let the order-statistic predictors (BMBP,
point-quantile, bootstrap) declare which ranks they will ask for as a
function of the window size: :meth:`subscribe_rank` registers a
``n -> rank`` resolver under a key, and :meth:`rank_value` answers it from
the shared maintained view, memoizing the resolved rank per window size.
All subscriptions on a window share one sorted structure and one flush
decision — the "shared-sort" contract the refit engine builds on.  Every
value produced this way is *bit-identical* to ``sorted(history)[rank-1]``
(property-tested in ``tests/core/test_history_properties.py``).

The arrival-order window is also exposed as a **zero-copy numpy view**
(:meth:`arrival_view`) so consumers that scan the whole history — the
log-normal running-sum rebuild after a trim, the training autocorrelation
— never materialize a Python list of floats.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["HistoryWindow"]

#: Starting buffer capacity for unbounded windows.
_MIN_CAPACITY = 64

#: Largest number of staged evictions (bounded-window evictions and small
#: trims) folded into the sorted view by in-place deletion; past this the
#: next flush re-sorts wholesale instead.
_MAX_PENDING_EVICTS = 32

#: Pending batches at or below this size are merged with per-value in-place
#: gap shifts (no allocation); larger ones use one vectorized merge pass.
_SCALAR_MERGE_MAX = 8

#: ``_flush`` merges incrementally while the pending batch is smaller than
#: ``sorted_size // _MERGE_CROSSOVER_DENOM`` and re-sorts wholesale above
#: it.  Derived from the ``history_flush`` microbenchmark in
#: ``BENCH_refit.json`` (see ``bmbp bench-core``): the in-place merge
#: cost crosses the wholesale ``np.sort`` cost at a batch of roughly
#: 1/32 of the sorted size — into 20 000 merged values, a 625-value
#: batch measures ~128 µs either way, while at 1/8 the merge is already
#: ~2× slower (312 µs vs 152 µs; ``np.sort`` on nearly-sorted input is
#: cheap, so the resort side grows much flatter than intuition
#: suggests).  The microbenchmark brackets the crossover from both
#: sides, so a regression in either path moves a measured number, not
#: just this constant.
_MERGE_CROSSOVER_DENOM = 32


class HistoryWindow:
    """Arrival-ordered observation buffer with an incrementally maintained
    sorted view and rank subscriptions."""

    def __init__(
        self,
        values: Iterable[float] = (),
        max_size: Optional[int] = None,
    ):
        """Create a window, optionally bounded to the most recent ``max_size``.

        ``max_size=None`` (the default, and the paper's configuration) keeps
        the full history until a change point trims it.
        """
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be positive, got {max_size}")
        self._max_size = max_size
        # Twice max_size guarantees at least max_size appends between
        # compactions, making eviction O(1) amortized.
        capacity = _MIN_CAPACITY if max_size is None else max(2 * max_size, _MIN_CAPACITY)
        self._buf = np.empty(capacity, dtype=float)
        self._start = 0
        self._end = 0
        # Sorted view: the first _sorted_n slots of a capacity buffer, so
        # scalar inserts/deletes are in-place shifts, not reallocations.
        self._sorted_buf = np.empty(0, dtype=float)
        self._sorted_n = 0
        self._merged_end = 0  # buffer index up to which the view is current
        self._resort = False  # too much moved at once: resort wholesale
        self._evicted: List[float] = []  # merged values awaiting deletion
        # Pre-sorted copy of the pending batch, when a caller supplied one
        # (the replay engine sorts each epoch's drain batch once for the
        # whole method bank); None when pending values accumulated item by
        # item or across several extends.
        self._presorted: Optional[np.ndarray] = None
        # Cached result of sorted_values(): identical object returned while
        # no mutation intervenes, so repeat readers don't re-slice.
        self._sorted_view: Optional[np.ndarray] = None
        # Rank subscriptions: key -> resolver(n) -> rank, with a per-key
        # (n, rank) memo so a stable window size skips re-resolving.
        self._rank_subs: Dict[str, Callable[[int], Optional[int]]] = {}
        self._rank_memo: Dict[str, Tuple[int, Optional[int]]] = {}
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._end - self._start

    def __bool__(self) -> bool:
        return self._end > self._start

    @property
    def max_size(self) -> Optional[int]:
        return self._max_size

    @property
    def values(self) -> List[float]:
        """Observations in arrival order (most recent last).  Copy."""
        return self._buf[self._start:self._end].tolist()

    def arrival_view(self) -> np.ndarray:
        """Observations in arrival order as a zero-copy numpy view.

        The returned array aliases the window's internal buffer: callers
        must not mutate it, and must not hold it across a later ``append``
        /``trim_to_recent``/``clear`` (the buffer may be compacted or
        reallocated underneath it).
        """
        return self._buf[self._start:self._end]

    # ------------------------------------------------------------- mutation

    def append(self, value: float) -> None:
        """Record one observation.  O(1) amortized, bounded or not."""
        value = float(value)
        if self._end == self._buf.size:
            self._compact_or_grow()
        self._buf[self._end] = value
        self._end += 1
        self._presorted = None
        self._sorted_view = None
        if self._max_size is not None and self._end - self._start > self._max_size:
            self._stage_evictions(self._start + 1)
            self._start += 1

    def extend(
        self, values: Iterable[float], presorted: Optional[np.ndarray] = None
    ) -> None:
        """Append many observations in one vectorized pass.

        Equivalent to ``append`` in a loop but O(n) with a single buffer
        copy, which is what makes daemon restarts with months of history
        fast: state loading goes through here, not through per-observation
        appends.

        ``presorted``, when given, must be ``np.sort`` of exactly this
        batch; the next sorted-view merge then skips re-sorting it.  The
        replay engine sorts each epoch's drain batch once and hands the
        result to every predictor's window — the shared-sort pass.  The
        hint is dropped (never trusted) whenever the pending region does
        not exactly coincide with this batch.
        """
        if isinstance(values, np.ndarray):
            batch = values.astype(float, copy=False).ravel()
        else:
            batch = np.asarray(list(values), dtype=float)
        n = batch.size
        if n == 0:
            return
        size = self._end - self._start
        if self._end + n > self._buf.size:
            need = size + n
            if need <= self._buf.size:
                # Enough dead space in front of the window: compact in place.
                target = self._buf
            else:
                target = np.empty(max(_MIN_CAPACITY, 2 * need), dtype=float)
            target[:size] = self._buf[self._start:self._end]
            self._buf = target
            self._merged_end -= self._start
            self._start = 0
            self._end = size
        lo = max(self._merged_end, self._start)
        had_pending = lo < self._end
        self._buf[self._end:self._end + n] = batch
        self._end += n
        self._sorted_view = None
        if had_pending:
            self._presorted = None
        elif presorted is not None and presorted.size == n:
            self._presorted = presorted
        else:
            self._presorted = None
        if self._max_size is not None and self._end - self._start > self._max_size:
            new_start = self._end - self._max_size
            self._stage_evictions(new_start)
            if new_start > self._end - n:
                # Eviction reached into the batch itself: the pending
                # region is now a suffix of the batch, not the batch.
                self._presorted = None
            self._start = new_start

    def trim_to_recent(self, k: int) -> None:
        """Keep only the most recent ``k`` observations (arrival order).

        This is the paper's change-point response: "trim the history as much
        as we are able to while still producing meaningful confidence
        bounds".  Trimming to more than the current length is a no-op.
        """
        if k < 0:
            raise ValueError(f"cannot trim to negative length {k}")
        if k >= self._end - self._start:
            return
        new_start = self._end - k
        self._stage_evictions(new_start)
        self._start = new_start
        self._sorted_view = None
        # A trim that reaches into the pending batch invalidates any
        # caller-supplied pre-sorted copy of it (the region is now a suffix).
        self._presorted = None

    def clear(self) -> None:
        self._start = 0
        self._end = 0
        self._merged_end = 0
        self._resort = False
        self._evicted.clear()
        self._presorted = None
        self._sorted_view = None
        self._sorted_buf = np.empty(0, dtype=float)
        self._sorted_n = 0
        self._rank_memo.clear()

    # ------------------------------------------------------------- queries

    def sorted_values(self) -> np.ndarray:
        """Ascending-sorted observations.

        The returned array is a view of the window's internal buffer;
        callers must not mutate it and must not hold it across a later
        mutation.  (Returning the live buffer avoids a copy per refit.)
        """
        if self._sorted_view is None:
            self._flush()
            self._sorted_view = self._sorted_buf[:self._sorted_n]
        return self._sorted_view

    def order_statistic(self, rank: int) -> float:
        """The ``rank``-th smallest observation (1-indexed).

        Equivalent to ``sorted_values()[rank - 1]``: the pending append
        batch is folded into the maintained view first (scalar gap-shift
        inserts for the one-or-two-observations-per-epoch refit cadence,
        one merge or resort for larger batches — see :meth:`_flush`), so a
        steady stream of refits pays O(new observations) of maintenance per
        epoch rather than a fresh O(n log n) sort.  Selecting from the
        (sorted ∪ pending) union *without* merging sounds cheaper still,
        but measures slower: the pending region grows between flushes, so
        repeated refits re-search an ever-longer batch and the per-call
        numpy overhead of the union select exceeds the memmove the fold
        costs once.
        """
        size = self._end - self._start
        if not 1 <= rank <= size:
            raise IndexError(f"rank {rank} out of range for {size} observations")
        if self._resort or self._evicted or self._end > max(self._merged_end, self._start):
            self._flush()
        return float(self._sorted_buf[rank - 1])

    # --------------------------------------------------- rank subscriptions

    def subscribe_rank(
        self, key: str, rank_for: Callable[[int], Optional[int]]
    ) -> str:
        """Register a rank resolver under ``key`` and return the key.

        ``rank_for(n)`` maps the current window size to the 1-indexed rank
        the subscriber needs (or ``None`` when no order statistic of ``n``
        observations can serve it — e.g. a sample too small for the
        requested confidence).  Subscribing the same key again replaces the
        resolver (predictors re-subscribe on reconfiguration).
        """
        self._rank_subs[key] = rank_for
        self._rank_memo.pop(key, None)
        return key

    def rank_value(self, key: str) -> Optional[float]:
        """The subscribed order statistic for the current window, or None.

        Resolves the subscription's rank for the current size (memoized per
        size — a window that did not grow between refits skips the resolver
        entirely) and selects it through :meth:`order_statistic`, so the
        result is bit-identical to ``sorted(history)[rank - 1]`` and every
        subscription shares the same maintained sorted view.
        """
        rank_for = self._rank_subs[key]
        n = self._end - self._start
        if n == 0:
            return None
        memo = self._rank_memo.get(key)
        if memo is not None and memo[0] == n:
            rank = memo[1]
        else:
            rank = rank_for(n)
            self._rank_memo[key] = (n, rank)
        if rank is None:
            return None
        return self.order_statistic(rank)

    def subscriptions(self) -> Tuple[str, ...]:
        """Keys of the registered rank subscriptions (reporting/tests)."""
        return tuple(self._rank_subs)

    # ------------------------------------------------------------- internals

    def _stage_evictions(self, new_start: int) -> None:
        """Record values dropped from the window front for incremental
        deletion from the sorted view.

        Only values already folded into the sorted view need deleting;
        values that were still pending simply never get merged (the pending
        region starts at ``max(_merged_end, start)``).  Past
        ``_MAX_PENDING_EVICTS`` staged deletions the next flush re-sorts
        wholesale instead.
        """
        if self._resort:
            return
        merged_hi = min(self._merged_end, new_start)
        count = merged_hi - self._start
        if count <= 0:
            return
        if len(self._evicted) + count > _MAX_PENDING_EVICTS:
            self._resort = True
            self._evicted.clear()
            return
        self._evicted.extend(self._buf[self._start:merged_hi].tolist())

    def _apply_evictions(self) -> None:
        """Delete staged evicted values from the sorted view, in place."""
        if not self._evicted:
            return
        buf = self._sorted_buf
        n = self._sorted_n
        for value in self._evicted:
            # The ndarray method skips np.searchsorted's dispatch wrapper —
            # measurable at the one-insert-per-epoch refit cadence.
            pos = int(buf[:n].searchsorted(value))
            buf[pos:n - 1] = buf[pos + 1:n]
            n -= 1
        self._sorted_n = n
        self._evicted.clear()

    def _adopt_sorted(self, arr: np.ndarray) -> None:
        """Install ``arr`` (ascending, exactly the window) as the sorted view."""
        # Keep headroom so subsequent scalar inserts shift in place instead
        # of growing immediately.
        capacity = max(_MIN_CAPACITY, arr.size + (arr.size >> 2))
        if self._sorted_buf.size >= arr.size:
            self._sorted_buf[:arr.size] = arr
        else:
            buf = np.empty(capacity, dtype=float)
            buf[:arr.size] = arr
            self._sorted_buf = buf
        self._sorted_n = arr.size

    def _insert_sorted_scalar(self, value: float) -> None:
        """In-place gap-shift insert: one searchsorted, one memmove."""
        n = self._sorted_n
        if n == self._sorted_buf.size:
            grown = np.empty(max(_MIN_CAPACITY, 2 * n), dtype=float)
            grown[:n] = self._sorted_buf[:n]
            self._sorted_buf = grown
        buf = self._sorted_buf
        pos = int(buf[:n].searchsorted(value, side="right"))
        buf[pos + 1:n + 1] = buf[pos:n]
        buf[pos] = value
        self._sorted_n = n + 1

    def _compact_or_grow(self) -> None:
        """Reclaim evicted slots in front of the window, or grow the buffer."""
        size = self._end - self._start
        if self._start >= max(size, self._buf.size // 2):
            # At least half the buffer is dead space: slide the live window
            # to the front.  Runs at most once per start-offset's worth of
            # appends, so each append pays O(1) amortized.
            target = self._buf
        else:
            target = np.empty(max(_MIN_CAPACITY, 2 * self._buf.size), dtype=float)
        target[:size] = self._buf[self._start:self._end]
        self._buf = target
        self._merged_end -= self._start
        self._start = 0
        self._end = size

    def _flush(self) -> None:
        """Bring the sorted view up to date.

        Wholesale resort when a trim moved most of the window (or staged
        work overflowed); otherwise fold staged evictions by in-place
        deletion and the pending append batch by in-place scalar inserts
        (small batches), one vectorized merge (medium), or — past the
        measured crossover — a wholesale resort after all.
        """
        window = self._buf[self._start:self._end]
        if self._resort:
            self._adopt_sorted(np.sort(window))
            self._resort = False
            self._evicted.clear()
            self._presorted = None
            self._merged_end = self._end
            return
        lo = max(self._merged_end, self._start)
        pending = self._end - lo
        if pending > self._sorted_n // _MERGE_CROSSOVER_DENOM and pending > _SCALAR_MERGE_MAX:
            # Large batch relative to the sorted view: one wholesale sort
            # of the window is cheaper than merging (measured crossover —
            # see the history_flush microbenchmark in ``bmbp bench-core``).
            self._adopt_sorted(np.sort(window))
            self._evicted.clear()
            self._presorted = None
            self._merged_end = self._end
            return
        self._apply_evictions()
        if pending > 0:
            if pending <= _SCALAR_MERGE_MAX:
                for i in range(lo, self._end):
                    self._insert_sorted_scalar(float(self._buf[i]))
            else:
                if self._presorted is not None:
                    batch = self._presorted
                else:
                    batch = np.sort(self._buf[lo:self._end])
                sorted_view = self._sorted_buf[:self._sorted_n]
                positions = np.searchsorted(sorted_view, batch)
                self._adopt_sorted(np.insert(sorted_view, positions, batch))
        self._presorted = None
        self._merged_end = self._end
