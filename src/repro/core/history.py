"""Observation history for predictors.

``HistoryWindow`` stores wait-time observations in arrival order (needed for
change-point trimming, which keeps the *most recent* k observations) while
also maintaining an ascending-sorted view (needed for order-statistic
bounds).  Appends are O(1) amortized in every mode:

* Observations live in one growable numpy buffer with ``[start, end)``
  window offsets.  Appending writes one slot; bounded windows
  (``max_size``) evict by advancing ``start`` — no per-append copy, resort,
  or trim.  Dead space in front of ``start`` is reclaimed in bulk when the
  buffer fills, so the cost of keeping the window bounded is amortized over
  at least ``max_size`` appends.
* The sorted view is maintained lazily, the next time it is requested: new
  values accumulated since the last read are merged in one vectorized pass,
  and a window whose *front* moved (eviction or trimming) is re-sorted
  wholesale — once per read, not once per append.

This matches the predictors' access pattern — many appends between epoch
refits, one sorted read per refit — and keeps full-trace replays linear-ish
instead of quadratic (the ``max_history`` sliding-window ablation was
previously O(n² log n) from re-sorting on every append).

The arrival-order window is also exposed as a **zero-copy numpy view**
(:meth:`arrival_view`) so consumers that scan the whole history — the
log-normal running-sum rebuild after a trim, the training autocorrelation
— never materialize a Python list of floats.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

__all__ = ["HistoryWindow"]

#: Starting buffer capacity for unbounded windows.
_MIN_CAPACITY = 64

#: Largest unmerged batch :meth:`HistoryWindow.order_statistic` will select
#: through without folding it into the sorted view first.  Bounds the
#: per-selection work while keeping the (eventual) merge amortized over at
#: least this many appends.
_MAX_PENDING_SELECT = 64


class HistoryWindow:
    """Arrival-ordered observation buffer with a lazily merged sorted view."""

    def __init__(
        self,
        values: Iterable[float] = (),
        max_size: Optional[int] = None,
    ):
        """Create a window, optionally bounded to the most recent ``max_size``.

        ``max_size=None`` (the default, and the paper's configuration) keeps
        the full history until a change point trims it.
        """
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be positive, got {max_size}")
        self._max_size = max_size
        # Twice max_size guarantees at least max_size appends between
        # compactions, making eviction O(1) amortized.
        capacity = _MIN_CAPACITY if max_size is None else max(2 * max_size, _MIN_CAPACITY)
        self._buf = np.empty(capacity, dtype=float)
        self._start = 0
        self._end = 0
        self._sorted = np.empty(0, dtype=float)
        self._merged_end = 0  # buffer index up to which _sorted is current
        self._resort = False  # front of the window moved: resort wholesale
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._end - self._start

    def __bool__(self) -> bool:
        return self._end > self._start

    @property
    def max_size(self) -> Optional[int]:
        return self._max_size

    @property
    def values(self) -> List[float]:
        """Observations in arrival order (most recent last).  Copy."""
        return self._buf[self._start:self._end].tolist()

    def arrival_view(self) -> np.ndarray:
        """Observations in arrival order as a zero-copy numpy view.

        The returned array aliases the window's internal buffer: callers
        must not mutate it, and must not hold it across a later ``append``
        /``trim_to_recent``/``clear`` (the buffer may be compacted or
        reallocated underneath it).
        """
        return self._buf[self._start:self._end]

    def append(self, value: float) -> None:
        """Record one observation.  O(1) amortized, bounded or not."""
        value = float(value)
        if self._end == self._buf.size:
            self._compact_or_grow()
        self._buf[self._end] = value
        self._end += 1
        if self._max_size is not None and self._end - self._start > self._max_size:
            self._start += 1  # evict the oldest; sorted view fixed lazily
            self._resort = True

    def extend(self, values: Iterable[float]) -> None:
        """Append many observations in one vectorized pass.

        Equivalent to ``append`` in a loop but O(n) with a single buffer
        copy, which is what makes daemon restarts with months of history
        fast: state loading goes through here, not through per-observation
        appends.
        """
        if isinstance(values, np.ndarray):
            batch = values.astype(float, copy=False).ravel()
        else:
            batch = np.asarray(list(values), dtype=float)
        n = batch.size
        if n == 0:
            return
        size = self._end - self._start
        if self._end + n > self._buf.size:
            need = size + n
            if need <= self._buf.size:
                # Enough dead space in front of the window: compact in place.
                target = self._buf
            else:
                target = np.empty(max(_MIN_CAPACITY, 2 * need), dtype=float)
            target[:size] = self._buf[self._start:self._end]
            self._buf = target
            self._merged_end -= self._start
            self._start = 0
            self._end = size
        self._buf[self._end:self._end + n] = batch
        self._end += n
        if self._max_size is not None and self._end - self._start > self._max_size:
            self._start = self._end - self._max_size
            self._resort = True

    def sorted_values(self) -> np.ndarray:
        """Ascending-sorted observations.

        The returned array is the window's internal buffer; callers must not
        mutate it.  (Returning the live buffer avoids a copy per refit.)
        """
        self._flush()
        return self._sorted

    def order_statistic(self, rank: int) -> float:
        """The ``rank``-th smallest observation (1-indexed), without a merge.

        Equivalent to ``sorted_values()[rank - 1]`` but avoids rebuilding
        the sorted view when only a few observations arrived since the last
        flush: the k-th element of the (sorted ∪ pending) union is selected
        in O(pending · log size) by locating each pending value's merge
        position.  The order-statistic predictors (BMBP, point-quantile)
        refit once per epoch with typically one or two new observations, so
        this turns their refit from O(history) into O(new observations);
        the deferred batch is folded in wholesale once it grows past
        ``_MAX_PENDING_SELECT``, keeping the amortized cost of an eventual
        full read bounded.
        """
        size = self._end - self._start
        if not 1 <= rank <= size:
            raise IndexError(f"rank {rank} out of range for {size} observations")
        lo = max(self._merged_end, self._start)
        pending = self._end - lo
        if self._resort or pending > _MAX_PENDING_SELECT:
            self._flush()
            return float(self._sorted[rank - 1])
        if pending == 0:
            return float(self._sorted[rank - 1])
        k = rank - 1  # 0-indexed rank within the merged union
        if pending <= 2:
            # The overwhelmingly common refit case (one or two observations
            # per epoch): locate the pending values' union positions with
            # scalar searches, skipping the array temporaries below.
            v1 = float(self._buf[lo])
            if pending == 1:
                u1 = int(np.searchsorted(self._sorted, v1, side="right"))
                if k == u1:
                    return v1
                return float(self._sorted[k - (u1 < k)])
            v2 = float(self._buf[lo + 1])
            if v2 < v1:
                v1, v2 = v2, v1
            u1 = int(np.searchsorted(self._sorted, v1, side="right"))
            u2 = int(np.searchsorted(self._sorted, v2, side="right")) + 1
            if k == u1:
                return v1
            if k == u2:
                return v2
            return float(self._sorted[k - (u1 < k) - (u2 < k)])
        batch = np.sort(self._buf[lo:self._end])
        # Stable-merge positions of the batch inside the sorted array
        # (batch elements placed after equal sorted elements): positions
        # are strictly increasing, so batch and sorted indices partition
        # the union's index range exactly.
        union_pos = np.searchsorted(self._sorted, batch, side="right")
        union_pos += np.arange(pending)
        hit = np.nonzero(union_pos == k)[0]
        if hit.size:
            return float(batch[hit[0]])
        before = int(np.count_nonzero(union_pos < k))
        return float(self._sorted[k - before])

    def trim_to_recent(self, k: int) -> None:
        """Keep only the most recent ``k`` observations (arrival order).

        This is the paper's change-point response: "trim the history as much
        as we are able to while still producing meaningful confidence
        bounds".  Trimming to more than the current length is a no-op.
        """
        if k < 0:
            raise ValueError(f"cannot trim to negative length {k}")
        if k >= self._end - self._start:
            return
        self._start = self._end - k
        self._resort = True

    def clear(self) -> None:
        self._start = 0
        self._end = 0
        self._merged_end = 0
        self._resort = False
        self._sorted = np.empty(0, dtype=float)

    def _compact_or_grow(self) -> None:
        """Reclaim evicted slots in front of the window, or grow the buffer."""
        size = self._end - self._start
        if self._start >= max(size, self._buf.size // 2):
            # At least half the buffer is dead space: slide the live window
            # to the front.  Runs at most once per start-offset's worth of
            # appends, so each append pays O(1) amortized.
            target = self._buf
        else:
            target = np.empty(max(_MIN_CAPACITY, 2 * self._buf.size), dtype=float)
        target[:size] = self._buf[self._start:self._end]
        self._buf = target
        self._merged_end -= self._start
        self._start = 0
        self._end = size

    def _flush(self) -> None:
        """Bring the sorted array up to date (vectorized)."""
        window = self._buf[self._start:self._end]
        if self._resort:
            self._sorted = np.sort(window)
            self._resort = False
        else:
            lo = max(self._merged_end, self._start)
            if lo < self._end:
                batch = np.sort(self._buf[lo:self._end])
                if self._sorted.size == 0:
                    self._sorted = batch
                elif batch.size > self._sorted.size // 4:
                    # A large batch relative to the sorted array: np.insert
                    # pays searchsorted + a full reallocation anyway, and a
                    # wholesale sort of the window is cheaper past roughly
                    # a quarter of the array (see ``bmbp bench-core``'s
                    # history-flush microbenchmark for the crossover).
                    self._sorted = np.sort(window)
                else:
                    positions = np.searchsorted(self._sorted, batch)
                    self._sorted = np.insert(self._sorted, positions, batch)
        self._merged_end = self._end
