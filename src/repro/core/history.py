"""Observation history for predictors.

``HistoryWindow`` stores wait-time observations in arrival order (needed for
change-point trimming, which keeps the *most recent* k observations) while
also maintaining an ascending-sorted view (needed for order-statistic
bounds).  Appends are O(1): new values accumulate in a pending buffer that
is merged into the sorted array lazily, in one vectorized pass, the next
time the sorted view is requested.  This matches the predictors' access
pattern — many appends between epoch refits, one sorted read per refit —
and keeps full-trace replays linear-ish instead of quadratic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

__all__ = ["HistoryWindow"]


class HistoryWindow:
    """Arrival-ordered observation buffer with a lazily merged sorted view."""

    def __init__(
        self,
        values: Iterable[float] = (),
        max_size: Optional[int] = None,
    ):
        """Create a window, optionally bounded to the most recent ``max_size``.

        ``max_size=None`` (the default, and the paper's configuration) keeps
        the full history until a change point trims it.
        """
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be positive, got {max_size}")
        self._max_size = max_size
        self._arrival: List[float] = []
        self._sorted = np.empty(0, dtype=float)
        self._pending: List[float] = []
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return len(self._arrival)

    def __bool__(self) -> bool:
        return bool(self._arrival)

    @property
    def max_size(self) -> Optional[int]:
        return self._max_size

    @property
    def values(self) -> List[float]:
        """Observations in arrival order (most recent last).  Copy."""
        return list(self._arrival)

    def append(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._arrival.append(value)
        self._pending.append(value)
        if self._max_size is not None and len(self._arrival) > self._max_size:
            self.trim_to_recent(self._max_size)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.append(value)

    def sorted_values(self) -> np.ndarray:
        """Ascending-sorted observations.

        The returned array is the window's internal buffer; callers must not
        mutate it.  (Returning the live buffer avoids a copy per refit.)
        """
        self._flush()
        return self._sorted

    def trim_to_recent(self, k: int) -> None:
        """Keep only the most recent ``k`` observations (arrival order).

        This is the paper's change-point response: "trim the history as much
        as we are able to while still producing meaningful confidence
        bounds".  Trimming to more than the current length is a no-op.
        """
        if k < 0:
            raise ValueError(f"cannot trim to negative length {k}")
        if k >= len(self._arrival):
            return
        self._arrival = self._arrival[len(self._arrival) - k :]
        self._pending = []
        self._sorted = np.sort(np.asarray(self._arrival, dtype=float))

    def clear(self) -> None:
        self._arrival = []
        self._pending = []
        self._sorted = np.empty(0, dtype=float)

    def _flush(self) -> None:
        """Merge pending appends into the sorted array (vectorized)."""
        if not self._pending:
            return
        batch = np.sort(np.asarray(self._pending, dtype=float))
        self._pending = []
        if self._sorted.size == 0:
            self._sorted = batch
            return
        positions = np.searchsorted(self._sorted, batch)
        self._sorted = np.insert(self._sorted, positions, batch)
