"""Core BMBP machinery: quantile bounds, history, change points, predictors."""

from repro.core.binomial import (
    binomial_cdf,
    lower_bound_rank,
    minimum_sample_size,
    minimum_sample_size_lower,
    normal_approx_lower_rank,
    normal_approx_upper_rank,
    upper_bound_rank,
)
from repro.core.bmbp import BMBPPredictor
from repro.core.changepoint import ConsecutiveMissDetector
from repro.core.clustering import AttributeClusterer, ClusteredPredictor
from repro.core.history import HistoryWindow
from repro.core.interval import IntervalPredictor, QuantileBank
from repro.core.lognormal import LogNormalPredictor
from repro.core.predictor import (
    REFIT_MODES,
    SKETCH_REFIT_MODES,
    BoundKind,
    Prediction,
    QuantilePredictor,
)
from repro.core.quantile import (
    QuantileBound,
    bound_rank,
    lower_confidence_bound,
    two_sided_confidence_interval,
    upper_confidence_bound,
)
from repro.core.refit import EpochBatch
from repro.core.sketch import P2Quantile, TDigest
from repro.core.rare_event import (
    RareEventTable,
    default_rare_event_table,
    generate_rare_event_table,
)

__all__ = [
    "AttributeClusterer",
    "BMBPPredictor",
    "ClusteredPredictor",
    "BoundKind",
    "ConsecutiveMissDetector",
    "EpochBatch",
    "HistoryWindow",
    "IntervalPredictor",
    "LogNormalPredictor",
    "P2Quantile",
    "Prediction",
    "QuantileBank",
    "QuantileBound",
    "QuantilePredictor",
    "REFIT_MODES",
    "RareEventTable",
    "SKETCH_REFIT_MODES",
    "TDigest",
    "binomial_cdf",
    "bound_rank",
    "default_rare_event_table",
    "generate_rare_event_table",
    "lower_bound_rank",
    "lower_confidence_bound",
    "minimum_sample_size",
    "minimum_sample_size_lower",
    "normal_approx_lower_rank",
    "normal_approx_upper_rank",
    "two_sided_confidence_interval",
    "upper_bound_rank",
    "upper_confidence_bound",
]
