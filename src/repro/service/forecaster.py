"""The live forecasting service.

``QueueForecaster`` is the deployment wrapper around BMBP: a batch system
(or a thin log-tailing shim) calls ``job_submitted`` when a job enters a
queue and ``job_started`` when it begins executing; users and schedulers
call ``forecast``/``outlook`` for current bounds.  The forecaster

* keeps one predictor per queue, plus one per (queue, processor-bin) when
  ``by_bin`` is on — the paper's Section 6.2 use case;
* follows the paper's information protocol: quotes come from the last
  refit epoch, waits become history only at job start, and the quoted
  bound is scored against the eventual wait to drive change-point
  detection;
* trains itself: each predictor runs in a training mode until it has seen
  ``training_jobs`` starts, then locks in its rare-event threshold;
* serializes its complete state to JSON (``save``/``load``), so restarts
  do not lose history — queue history spans months and is irreplaceable.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.bmbp import BMBPPredictor
from repro.workloads.bins import bin_label, bin_of

__all__ = ["ForecasterConfig", "QueueForecaster"]

#: Key for per-queue (None bin) or per-queue-and-bin predictors.
PredictorKey = Tuple[str, Optional[str]]


@dataclass(frozen=True)
class ForecasterConfig:
    """Service configuration; defaults are the paper's evaluation settings."""

    quantile: float = 0.95
    confidence: float = 0.95
    epoch: float = 300.0
    by_bin: bool = True
    training_jobs: int = 100
    method: str = "auto"

    def __post_init__(self) -> None:
        if self.epoch < 0.0:
            raise ValueError(f"epoch must be non-negative, got {self.epoch}")
        if self.training_jobs < 1:
            raise ValueError("training_jobs must be positive")


class QueueForecaster:
    """Per-queue(/bin) BMBP banks behind a submit/start/forecast API."""

    #: Version 2 added exact refit-cycle state (``current``/``since_refit``/
    #: ``miss_run``/``last_refit``); version-1 snapshots still load.
    STATE_VERSION = 2

    def __init__(self, config: Optional[ForecasterConfig] = None):
        self.config = config or ForecasterConfig()
        self._predictors: Dict[PredictorKey, BMBPPredictor] = {}
        self._starts_seen: Dict[PredictorKey, int] = {}
        self._last_refit: Dict[PredictorKey, float] = {}
        # Open jobs: job_id -> (submit_time, [(key, quoted_bound), ...]).
        self._pending: Dict[str, Tuple[float, list]] = {}

    # ----------------------------------------------------------- lifecycle

    def job_submitted(
        self, job_id: str, queue: str, procs: int, now: float
    ) -> Optional[float]:
        """Record a submission; return the bound quoted to this job's user.

        The returned bound comes from the most specific predictor available
        (queue+bin if configured and trained, else the queue-level one).
        ``None`` means no quotable bound yet (insufficient history).
        """
        if job_id in self._pending:
            raise ValueError(f"job {job_id!r} already pending")
        quotes = []
        quoted: Optional[float] = None
        for key in self._keys(queue, procs):
            predictor = self._ensure(key)
            self._maybe_refit(key, now)
            bound = predictor.predict() if self._trained(key) else None
            quotes.append((key, bound))
            if bound is not None:
                quoted = bound  # most specific trained predictor wins
        self._pending[job_id] = (now, quotes)
        return quoted

    def job_started(self, job_id: str, now: float) -> float:
        """Record that a pending job began executing; returns its wait.

        Feeds the wait (and the outcome of any quoted bound) to every
        predictor that covered the job.
        """
        try:
            submit_time, quotes = self._pending.pop(job_id)
        except KeyError:
            raise KeyError(f"unknown or already-started job {job_id!r}") from None
        wait = now - submit_time
        if wait < 0.0:
            raise ValueError(f"job {job_id!r} started before it was submitted")
        for key, bound in quotes:
            predictor = self._ensure(key)
            predictor.observe(wait, predicted=bound)
            self._starts_seen[key] = self._starts_seen.get(key, 0) + 1
            if self._starts_seen[key] == self.config.training_jobs:
                predictor.finish_training()
        return wait

    def job_cancelled(self, job_id: str) -> None:
        """Forget a pending job (cancelled before starting)."""
        self._pending.pop(job_id, None)

    def is_pending(self, job_id: str) -> bool:
        """Whether a submitted job is still waiting to start."""
        return job_id in self._pending

    # ------------------------------------------------------------ queries

    def forecast(self, queue: str, procs: Optional[int] = None) -> Optional[float]:
        """Current upper bound for a hypothetical submission.

        A pure query: it reports the bound from the last refit and never
        mutates predictor state.  Refits happen on event ingestion
        (``job_submitted``) or an explicit :meth:`refit` — so concurrent
        readers always see a consistent quote, and a read storm cannot
        advance the refit clock.
        """
        procs_value = procs if procs is not None else 1
        best: Optional[float] = None
        for key in self._keys(queue, procs_value):
            if procs is None and key[1] is not None:
                continue
            predictor = self._predictors.get(key)
            if predictor is None or not self._trained(key):
                continue
            bound = predictor.predict()
            if bound is not None:
                best = bound
        return best

    def outlook(self, queue: str) -> dict:
        """Structured per-bin view of a queue's current bounds.

        Returns the queue-level entry under ``"all"`` plus one entry per
        processor bin that has its own predictor.  Pure query, like
        :meth:`forecast`.
        """
        bins: Dict[str, dict] = {}
        for (name, bin_name), predictor in sorted(
            self._predictors.items(), key=lambda item: (item[0][0], str(item[0][1]))
        ):
            if name != queue:
                continue
            key = (name, bin_name)
            trained = self._trained(key)
            bins[bin_name or "all"] = {
                "bound": predictor.predict() if trained else None,
                "n_history": len(predictor.history),
                "trained": trained,
            }
        return {
            "queue": queue,
            "quantile": self.config.quantile,
            "confidence": self.config.confidence,
            "bins": bins,
        }

    def refit(self, now: Optional[float] = None) -> int:
        """Explicitly refit every predictor; returns how many were stale.

        The one sanctioned way to refresh quotes outside event ingestion
        (e.g. a daemon's periodic epoch tick).  ``now`` stamps the refit
        clock so the per-key epoch throttle restarts from this moment.
        """
        refit_count = 0
        for key, predictor in self._predictors.items():
            if predictor.observations_since_refit > 0 or predictor.predict() is None:
                refit_count += 1
            predictor.refit_if_stale()
            if now is not None:
                self._last_refit[key] = now
        return refit_count

    def queues(self) -> list:
        """Queue names with at least one predictor."""
        return sorted({queue for queue, _ in self._predictors})

    def pending_count(self) -> int:
        return len(self._pending)

    def describe(self) -> str:
        """One line per predictor: key, history size, current bound."""
        lines = []
        for key in sorted(self._predictors, key=str):
            predictor = self._predictors[key]
            bound = predictor.predict()
            label = key[0] if key[1] is None else f"{key[0]}[{key[1]}]"
            bound_text = f"{bound:,.0f} s" if bound is not None else "-"
            trained = "trained" if self._trained(key) else "training"
            lines.append(
                f"{label}: n={len(predictor.history)} ({trained}), "
                f"bound={bound_text}"
            )
        return "\n".join(lines) if lines else "no queues observed yet"

    # -------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """JSON-serializable snapshot of configuration and all histories.

        Since version 2 the snapshot also captures the exact refit-cycle
        state — the cached quote, the staleness counter, the detector's
        in-progress miss run, and the per-key refit clock — so a restored
        forecaster quotes the same bound and refits at the same future
        moment as the one that was saved (restart transparency; the server
        daemon's crash-recovery guarantee depends on this).
        """
        predictors = {}
        for (queue, bin_name), predictor in self._predictors.items():
            key = (queue, bin_name)
            last_refit = self._last_refit.get(key, float("-inf"))
            detector = predictor.detector
            predictors["\x1f".join([queue, bin_name or ""])] = {
                "history": list(predictor.history.values),
                "starts_seen": self._starts_seen.get(key, 0),
                "threshold": predictor.miss_threshold,
                "trained": predictor.trained,
                "current": predictor.predict(),
                "since_refit": predictor.observations_since_refit,
                "miss_run": detector.current_run if detector is not None else 0,
                "last_refit": None if math.isinf(last_refit) else last_refit,
            }
        return {
            "version": self.STATE_VERSION,
            "config": asdict(self.config),
            "predictors": predictors,
            "pending": {
                job_id: {
                    "submit_time": submit_time,
                    "quotes": [
                        {"queue": key[0], "bin": key[1], "bound": bound}
                        for key, bound in quotes
                    ],
                }
                for job_id, (submit_time, quotes) in self._pending.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "QueueForecaster":
        version = state.get("version")
        if version not in (1, cls.STATE_VERSION):
            raise ValueError(f"unsupported state version {version!r}")
        forecaster = cls(ForecasterConfig(**state["config"]))
        for packed, snapshot in state["predictors"].items():
            queue, bin_name = packed.split("\x1f")
            key = (queue, bin_name or None)
            predictor = forecaster._ensure(key)
            # Bulk-load: one buffer copy, not one observe() per wait —
            # restarting with months of history must not take minutes.
            predictor.preload_history(snapshot["history"])
            forecaster._starts_seen[key] = snapshot["starts_seen"]
            if snapshot["trained"]:
                predictor.mark_trained()
                if snapshot["threshold"] is not None and predictor.detector:
                    predictor.detector.retune(snapshot["threshold"])
            if "current" in snapshot:
                # Version >= 2: restore the refit cycle exactly as saved.
                predictor.restore_quote(
                    snapshot["current"], snapshot.get("since_refit", 0)
                )
                if predictor.detector is not None:
                    predictor.detector.restore_run(snapshot.get("miss_run", 0))
                last_refit = snapshot.get("last_refit")
                if last_refit is not None:
                    forecaster._last_refit[key] = last_refit
            else:
                # Version 1 recorded no quote; recompute from history.
                predictor.refit()
        for job_id, record in state["pending"].items():
            quotes = [
                ((quote["queue"], quote["bin"]), quote["bound"])
                for quote in record["quotes"]
            ]
            forecaster._pending[job_id] = (record["submit_time"], quotes)
        return forecaster

    def save(self, path: Union[str, Path]) -> None:
        """Atomically persist state (temp file + ``os.replace``).

        Queue history spans months and is irreplaceable, so a crash (or a
        concurrent reader) mid-write must never be able to see or leave a
        torn snapshot: the JSON is staged in a sibling temp file and
        renamed over the target in one atomic step.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_state())
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QueueForecaster":
        return cls.from_state(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------ helpers

    def _keys(self, queue: str, procs: int) -> list:
        keys: list = [(queue, None)]
        if self.config.by_bin:
            keys.append((queue, bin_label(bin_of(procs))))
        return keys

    def _ensure(self, key: PredictorKey) -> BMBPPredictor:
        if key not in self._predictors:
            self._predictors[key] = BMBPPredictor(
                quantile=self.config.quantile,
                confidence=self.config.confidence,
                method=self.config.method,
            )
            self._starts_seen[key] = 0
            self._last_refit[key] = float("-inf")
        return self._predictors[key]

    def _trained(self, key: PredictorKey) -> bool:
        return self._predictors[key].trained

    def _maybe_refit(self, key: PredictorKey, now: float) -> None:
        if now - self._last_refit.get(key, float("-inf")) >= self.config.epoch:
            self._predictors[key].refit_if_stale()
            self._last_refit[key] = now
