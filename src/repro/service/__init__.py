"""Deployment layer: a live queue-delay forecasting service.

The paper describes BMBP as "a practically realizable predictive
capability for eventual deployment as a user and scheduling tool", with a
working prototype being integrated with batch schedulers.  This subpackage
is that tool: :class:`QueueForecaster` manages per-queue (and optionally
per-processor-bin) predictor banks, follows the Section 5.1 information
protocol in real time (quote at submit, learn at start, refit per epoch),
and persists its state across restarts.
"""

from repro.service.forecaster import ForecasterConfig, QueueForecaster

__all__ = ["ForecasterConfig", "QueueForecaster"]
