"""Descriptive statistics used to characterize wait-time traces.

The paper's Table 1 reports, for every machine/queue, the job count and the
mean, median, and sample standard deviation of queuing delay, and observes
that every queue is heavy-tailed (median << mean, stddev >> mean).  This
module computes those summaries and the heavy-tail indicator used by the
workload calibrator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DescriptiveSummary", "heavy_tail_ratio", "summarize"]


@dataclass(frozen=True)
class DescriptiveSummary:
    """Summary statistics for one wait-time series (one Table 1 row)."""

    count: int
    mean: float
    median: float
    std: float

    @property
    def tail_ratio(self) -> float:
        """Mean divided by median; >> 1 indicates a heavy right tail."""
        if self.median <= 0.0:
            return float("inf") if self.mean > 0.0 else 1.0
        return self.mean / self.median

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation divided by the mean."""
        if self.mean <= 0.0:
            return 0.0
        return self.std / self.mean

    def is_heavy_tailed(self, ratio_threshold: float = 2.0) -> bool:
        """Heuristic from the paper: median significantly below mean and large
        variance relative to the mean."""
        return self.tail_ratio >= ratio_threshold and self.coefficient_of_variation >= 1.0


def summarize(values: Sequence[float]) -> DescriptiveSummary:
    """Compute the Table 1 summary statistics for a series.

    Uses the *sample* standard deviation (ddof=1) to match the paper's
    "sample standard deviation" column; a single-element series reports a
    standard deviation of zero.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty series")
    std = float(np.std(arr, ddof=1)) if arr.size > 1 else 0.0
    return DescriptiveSummary(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        median=float(np.median(arr)),
        std=std,
    )


def heavy_tail_ratio(values: Sequence[float]) -> float:
    """Return mean/median for a series (inf when the median is zero)."""
    return summarize(values).tail_ratio
