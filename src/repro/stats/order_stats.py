"""Order-statistic helpers.

BMBP's confidence bounds are order statistics of the observed history, so the
core operations here are "give me the k-th smallest value" and "which rank
does a given quantile correspond to".  Ranks are 1-indexed throughout, to
match the statistical convention (and the paper's notation ``x_(k)``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["order_statistic", "quantile_index", "rank_of_value"]


def order_statistic(sorted_values: Sequence[float], k: int) -> float:
    """Return the k-th order statistic (1-indexed) of an ascending sequence.

    Parameters
    ----------
    sorted_values:
        Sample sorted in ascending order.
    k:
        1-indexed rank; ``k=1`` is the minimum, ``k=len(sorted_values)`` the
        maximum.

    Raises
    ------
    IndexError
        If ``k`` is outside ``[1, len(sorted_values)]``.
    """
    n = len(sorted_values)
    if not 1 <= k <= n:
        raise IndexError(f"order statistic rank {k} outside [1, {n}]")
    return float(sorted_values[k - 1])


def quantile_index(n: int, q: float) -> int:
    """Return the 1-indexed rank of the empirical q-quantile of a size-n sample.

    Uses the conservative ceiling convention ``ceil(n * q)`` (clamped to at
    least 1) so that at least a fraction ``q`` of the sample lies at or below
    the returned rank.
    """
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q}")
    return max(1, math.ceil(n * q))


def rank_of_value(sorted_values: Sequence[float], value: float) -> int:
    """Return how many sample elements are <= ``value``.

    This is the empirical CDF numerator: ``rank_of_value(xs, x) / len(xs)``
    is the fraction of the sample at or below ``x``.
    """
    return int(np.searchsorted(sorted_values, value, side="right"))
