"""Weibull distribution support.

The workload-characterization literature the paper cites frequently models
batch-job quantities (interarrivals, runtimes, and sometimes waits) as
Weibull.  We provide the distribution plus a maximum-likelihood fit so the
ablations can include a Weibull-based predictor alongside Downey's
log-uniform and the log-normal methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

__all__ = ["WeibullDistribution", "fit_weibull"]


@dataclass(frozen=True)
class WeibullDistribution:
    """Two-parameter Weibull: ``P(X <= x) = 1 - exp(-(x/scale)^shape)``."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        return self.scale * (-math.log(1.0 - q)) ** (1.0 / self.shape)

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return 1.0 - math.exp(-((x / self.scale) ** self.shape))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)


def fit_weibull(
    values: Sequence[float],
    shift: float = 1.0,
    guess: Optional[float] = None,
) -> WeibullDistribution:
    """Maximum-likelihood Weibull fit (zero waits handled via ``shift``).

    Uses the standard profile-likelihood reduction: for a given shape k the
    MLE scale is ``(mean(x^k))^(1/k)``, and k solves a one-dimensional
    fixed-point equation, which we bracket and solve with brentq.

    ``guess`` warm-starts the root search with a previous fit's shape via a
    safeguarded Newton iteration (the profile equation has an analytic
    derivative costing one extra vector reduction per step).  Refitting
    after a handful of new observations — the replay engine's epoch cadence
    — converges in two or three steps; if Newton wanders out of the valid
    shape range or stalls, we fall back to the cold bracketed solve.
    """
    arr = np.asarray(values, dtype=float) + shift
    if arr.size < 2:
        raise ValueError("Weibull fit needs at least two observations")
    if np.any(arr <= 0.0):
        raise ValueError("all values must exceed -shift for a Weibull fit")
    logs = np.log(arr)
    log_mean = logs.mean()
    powered = np.empty_like(logs)

    def profile(k: float) -> float:
        # exp(k * log x) is x**k with one vector multiply instead of a
        # per-element pow — the profile evaluation is the whole cost of
        # this fit, so it is worth spelling out.
        np.multiply(logs, k, out=powered)
        np.exp(powered, out=powered)
        return float(np.dot(powered, logs) / powered.sum() - 1.0 / k - log_mean)

    lo, hi = 1e-3, 1.0
    shape = None
    if guess is not None and lo < guess < 512.0:
        logs2 = logs * logs
        k = float(guess)
        for _ in range(12):
            np.multiply(logs, k, out=powered)
            np.exp(powered, out=powered)
            s0 = float(powered.sum())
            s1 = float(np.dot(powered, logs))
            g = s1 / s0 - 1.0 / k - log_mean
            gp = (float(np.dot(powered, logs2)) * s0 - s1 * s1) / (s0 * s0)
            gp += 1.0 / (k * k)
            if not math.isfinite(g) or gp <= 0.0:
                break
            k_next = k - g / gp
            if not lo < k_next < 512.0:
                break
            if abs(k_next - k) <= 1e-9 * k:
                shape = k_next
                break
            k = k_next
    if shape is None:
        while profile(hi) < 0.0 and hi < 512.0:
            hi *= 2.0
        if profile(lo) > 0.0:
            shape = lo
        elif profile(hi) < 0.0:
            shape = hi
        else:
            shape = float(optimize.brentq(profile, lo, hi, xtol=1e-9))
    np.multiply(logs, shape, out=powered)
    np.exp(powered, out=powered)
    scale = float(powered.mean() ** (1.0 / shape))
    return WeibullDistribution(shape=shape, scale=scale)
