"""Weibull distribution support.

The workload-characterization literature the paper cites frequently models
batch-job quantities (interarrivals, runtimes, and sometimes waits) as
Weibull.  We provide the distribution plus a maximum-likelihood fit so the
ablations can include a Weibull-based predictor alongside Downey's
log-uniform and the log-normal methods.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import optimize

__all__ = ["WeibullDistribution", "fit_weibull"]


@dataclass(frozen=True)
class WeibullDistribution:
    """Two-parameter Weibull: ``P(X <= x) = 1 - exp(-(x/scale)^shape)``."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0:
            raise ValueError(f"shape must be positive, got {self.shape}")
        if self.scale <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        return self.scale * (-math.log(1.0 - q)) ** (1.0 / self.shape)

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        return 1.0 - math.exp(-((x / self.scale) ** self.shape))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)


#: Warm-start Newton acceptance: stop when the proposed step falls below
#: this fraction of the current shape.  The Newton step approximates the
#: current iterate's own error, so the accepted shape carries a relative
#: error of about this much — three-plus orders of magnitude below the
#: fit's statistical error at any realistic window (~n^-1/2), and both
#: refit modes run the identical path so A/B agreement is unaffected.
#: Accepting here (instead of iterating the step down to 1e-9) saves one
#: full profile evaluation per warm refit — a third of the fit's cost at
#: the replay engine's epoch cadence.
_NEWTON_STEP_TOL = 1e-5


def fit_weibull(
    values: Sequence[float],
    shift: float = 1.0,
    guess: Optional[float] = None,
    logs: Optional[np.ndarray] = None,
) -> WeibullDistribution:
    """Maximum-likelihood Weibull fit (zero waits handled via ``shift``).

    Uses the standard profile-likelihood reduction: for a given shape k the
    MLE scale is ``(mean(x^k))^(1/k)``, and k solves a one-dimensional
    fixed-point equation, which we bracket and solve with brentq.

    ``guess`` warm-starts the root search with a previous fit's shape via a
    safeguarded Newton iteration (the profile equation has an analytic
    derivative costing one extra vector reduction per step).  Refitting
    after a handful of new observations — the replay engine's epoch cadence
    — converges in a couple of steps; the accepted iterate reuses its own
    profile evaluation for the scale, so no extra pass over the window is
    paid.  If Newton wanders out of the valid shape range or stalls, we
    fall back to the cold bracketed solve.

    ``logs``, when given, must be ``np.log(values + shift)`` precomputed —
    the fit's sufficient statistics are all reductions over these logs, so
    a caller that maintains them incrementally (the Weibull predictor's
    log cache) skips the full ``np.log`` pass that otherwise dominates a
    warm refit.  The caller vouches for the array; it is used read-only.
    """
    if logs is None:
        arr = np.asarray(values, dtype=float) + shift
        if arr.size < 2:
            raise ValueError("Weibull fit needs at least two observations")
        if np.any(arr <= 0.0):
            raise ValueError("all values must exceed -shift for a Weibull fit")
        logs = np.log(arr)
    elif logs.size < 2:
        raise ValueError("Weibull fit needs at least two observations")
    # Same pairwise reduction as ``logs.mean()`` without the method's
    # dispatch overhead (this runs once per refit, every epoch).
    log_mean = float(np.add.reduce(logs)) / logs.size
    powered = np.empty_like(logs)

    def profile(k: float) -> float:
        # exp(k * log x) is x**k with one vector multiply instead of a
        # per-element pow — the profile evaluation is the whole cost of
        # this fit, so it is worth spelling out.
        np.multiply(logs, k, out=powered)
        np.exp(powered, out=powered)
        return float(np.dot(powered, logs) / powered.sum() - 1.0 / k - log_mean)

    lo, hi = 1e-3, 1.0
    if guess is not None and lo < guess < 512.0:
        logs2 = logs * logs
        k = float(guess)
        for _ in range(12):
            np.multiply(logs, k, out=powered)
            np.exp(powered, out=powered)
            s0 = float(powered.sum())
            s1 = float(np.dot(powered, logs))
            g = s1 / s0 - 1.0 / k - log_mean
            gp = (float(np.dot(powered, logs2)) * s0 - s1 * s1) / (s0 * s0)
            gp += 1.0 / (k * k)
            if not math.isfinite(g) or gp <= 0.0:
                break
            k_next = k - g / gp
            if not lo < k_next < 512.0:
                break
            if abs(k_next - k) <= _NEWTON_STEP_TOL * k:
                # Accept the evaluated iterate and derive the scale from
                # the sufficient statistic already in hand — the final
                # full-window pass the cold path needs is skipped.
                scale = (s0 / logs.size) ** (1.0 / k)
                return WeibullDistribution(shape=k, scale=scale)
            k = k_next
    while profile(hi) < 0.0 and hi < 512.0:
        hi *= 2.0
    if profile(lo) > 0.0:
        shape = lo
    elif profile(hi) < 0.0:
        shape = hi
    else:
        shape = float(optimize.brentq(profile, lo, hi, xtol=1e-9))
    np.multiply(logs, shape, out=powered)
    np.exp(powered, out=powered)
    scale = float(powered.mean() ** (1.0 / shape))
    return WeibullDistribution(shape=shape, scale=scale)
