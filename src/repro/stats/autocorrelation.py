"""Autocorrelation estimation.

BMBP uses the lag-1 ("first") autocorrelation of the training series to pick
the consecutive-miss threshold that constitutes a "rare event" (Section 4.1
of the paper).  Because wait-time series are heavy tailed, the paper's
Monte-Carlo calibration works in log space; ``first_autocorrelation`` takes a
``log_space`` flag for the same reason.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["autocorrelation", "autocorrelation_function", "first_autocorrelation"]


def autocorrelation(values: Sequence[float], lag: int) -> float:
    """Sample autocorrelation at a given lag.

    Uses the standard biased estimator (normalizing by the lag-0
    autocovariance computed over the full series), which is what statistical
    packages report and what keeps the ACF positive semi-definite.

    Returns 0.0 for degenerate inputs (constant series or too few points),
    which is the conservative choice for threshold lookup: zero
    autocorrelation maps to the smallest rare-event threshold.
    """
    if lag < 0:
        raise ValueError(f"lag must be non-negative, got {lag}")
    arr = np.asarray(values, dtype=float)
    n = arr.size
    if lag == 0:
        return 1.0
    if n <= lag + 1:
        return 0.0
    centered = arr - arr.mean()
    denom = float(np.dot(centered, centered))
    if denom <= 0.0 or not math.isfinite(denom):
        return 0.0
    num = float(np.dot(centered[:-lag], centered[lag:]))
    return num / denom


def autocorrelation_function(values: Sequence[float], max_lag: int) -> np.ndarray:
    """Return the ACF at lags ``0..max_lag`` as an array of length max_lag+1."""
    if max_lag < 0:
        raise ValueError(f"max_lag must be non-negative, got {max_lag}")
    return np.array([autocorrelation(values, lag) for lag in range(max_lag + 1)])


def first_autocorrelation(values: Sequence[float], log_space: bool = True) -> float:
    """Lag-1 autocorrelation of a wait-time series.

    Parameters
    ----------
    values:
        Non-negative wait times.
    log_space:
        When true (the default, matching the paper's log-normal Monte-Carlo
        calibration), the ACF is computed on ``log(1 + x)`` so that the
        heavy tail does not let a handful of huge waits dominate the
        estimate.
    """
    arr = np.asarray(values, dtype=float)
    if log_space:
        arr = np.log1p(np.clip(arr, 0.0, None))
    return autocorrelation(arr, 1)
