"""Statistical substrate for BMBP.

This subpackage contains the low-level statistical machinery the predictors
are built on: descriptive statistics, autocorrelation estimation, parametric
distribution fits (log-normal, log-uniform), normal tolerance factors, and
order-statistic helpers.
"""

from repro.stats.autocorrelation import (
    autocorrelation,
    autocorrelation_function,
    first_autocorrelation,
)
from repro.stats.descriptive import (
    DescriptiveSummary,
    heavy_tail_ratio,
    summarize,
)
from repro.stats.distributions import (
    EmpiricalDistribution,
    LogNormalDistribution,
    LogUniformDistribution,
    fit_lognormal,
    fit_loguniform,
)
from repro.stats.order_stats import (
    order_statistic,
    quantile_index,
    rank_of_value,
)
from repro.stats.weibull import WeibullDistribution, fit_weibull
from repro.stats.tolerance import (
    minimum_sample_size_normal,
    normal_quantile_lower_factor,
    normal_quantile_upper_factor,
)

__all__ = [
    "DescriptiveSummary",
    "EmpiricalDistribution",
    "LogNormalDistribution",
    "LogUniformDistribution",
    "autocorrelation",
    "autocorrelation_function",
    "first_autocorrelation",
    "fit_lognormal",
    "fit_loguniform",
    "heavy_tail_ratio",
    "minimum_sample_size_normal",
    "normal_quantile_lower_factor",
    "normal_quantile_upper_factor",
    "order_statistic",
    "quantile_index",
    "rank_of_value",
    "summarize",
    "WeibullDistribution",
    "fit_weibull",
]
