"""Parametric and empirical distributions for wait-time modelling.

Three families appear in the paper:

* **Log-normal** — Downey's suggested model for overall wait times and the
  comparison predictor's working assumption (Section 4.2).  Also the family
  used by the rare-event Monte-Carlo calibration.
* **Log-uniform** — Downey's model for the delay seen by the job at the head
  of a FCFS queue; we implement it as a baseline predictor substrate.
* **Empirical** — the nonparametric view BMBP itself takes.

Wait times can legitimately be zero (interactive queues start jobs
immediately), so every log-space operation works on ``x + shift`` with a
configurable shift that defaults to one second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "EmpiricalDistribution",
    "LogNormalDistribution",
    "LogUniformDistribution",
    "fit_lognormal",
    "fit_loguniform",
]

#: Default shift applied before taking logarithms, in seconds.  A one-second
#: shift leaves multi-minute waits essentially unchanged while making
#: zero-second waits representable.
DEFAULT_LOG_SHIFT = 1.0


@dataclass(frozen=True)
class LogNormalDistribution:
    """A (shifted) log-normal: ``log(X + shift)`` is Normal(mu, sigma)."""

    mu: float
    sigma: float
    shift: float = DEFAULT_LOG_SHIFT

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @property
    def median(self) -> float:
        return math.exp(self.mu) - self.shift

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0) - self.shift

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def quantile(self, q: float) -> float:
        """The q-quantile of X (inverse CDF)."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        z = float(sps.norm.ppf(q))
        return math.exp(self.mu + self.sigma * z) - self.shift

    def cdf(self, x: float) -> float:
        if x + self.shift <= 0.0:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if math.log(x + self.shift) >= self.mu else 0.0
        z = (math.log(x + self.shift) - self.mu) / self.sigma
        return float(sps.norm.cdf(z))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        draws = rng.normal(self.mu, self.sigma, size=n)
        return np.exp(draws) - self.shift

    @classmethod
    def from_mean_median(
        cls,
        mean: float,
        median: float,
        shift: float = DEFAULT_LOG_SHIFT,
    ) -> "LogNormalDistribution":
        """Calibrate (mu, sigma) from a target mean and median.

        For a log-normal, ``median = exp(mu)`` and ``mean = exp(mu + s^2/2)``;
        inverting gives ``sigma = sqrt(2 ln(mean/median))``.  This is how the
        synthetic workload generator turns a Table 1 row into distribution
        parameters.  When ``mean <= median`` (not heavy tailed) sigma is
        clamped to zero.
        """
        shifted_median = median + shift
        shifted_mean = mean + shift
        if shifted_median <= 0.0:
            raise ValueError("median + shift must be positive")
        mu = math.log(shifted_median)
        ratio = shifted_mean / shifted_median
        sigma = math.sqrt(2.0 * math.log(ratio)) if ratio > 1.0 else 0.0
        return cls(mu=mu, sigma=sigma, shift=shift)


@dataclass(frozen=True)
class LogUniformDistribution:
    """Downey's log-uniform: ``log(X + shift)`` is Uniform(log_lo, log_hi)."""

    log_lo: float
    log_hi: float
    shift: float = DEFAULT_LOG_SHIFT

    def __post_init__(self) -> None:
        if self.log_hi < self.log_lo:
            raise ValueError("log_hi must be >= log_lo")

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        log_x = self.log_lo + q * (self.log_hi - self.log_lo)
        return math.exp(log_x) - self.shift

    def cdf(self, x: float) -> float:
        if x + self.shift <= 0.0:
            return 0.0
        log_x = math.log(x + self.shift)
        if log_x >= self.log_hi:
            return 1.0
        if log_x <= self.log_lo:
            return 0.0
        return (log_x - self.log_lo) / (self.log_hi - self.log_lo)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        draws = rng.uniform(self.log_lo, self.log_hi, size=n)
        return np.exp(draws) - self.shift


class EmpiricalDistribution:
    """The empirical distribution of a sample; BMBP's nonparametric view."""

    def __init__(self, values: Sequence[float]):
        arr = np.sort(np.asarray(values, dtype=float))
        if arr.size == 0:
            raise ValueError("empirical distribution requires at least one value")
        self._sorted = arr

    @property
    def sorted_values(self) -> np.ndarray:
        return self._sorted

    def __len__(self) -> int:
        return int(self._sorted.size)

    def quantile(self, q: float) -> float:
        """Conservative empirical quantile: the ceil(n*q)-th order statistic."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        k = max(1, math.ceil(self._sorted.size * q))
        return float(self._sorted[k - 1])

    def cdf(self, x: float) -> float:
        rank = int(np.searchsorted(self._sorted, x, side="right"))
        return rank / self._sorted.size


def fit_lognormal(
    values: Sequence[float],
    shift: float = DEFAULT_LOG_SHIFT,
) -> LogNormalDistribution:
    """Maximum-likelihood log-normal fit.

    MLE for a log-normal reduces to the sample mean and (MLE, ddof=0)
    standard deviation of the shifted logarithms.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot fit a distribution to an empty sample")
    if np.any(arr + shift <= 0.0):
        raise ValueError("all values must exceed -shift for a log-normal fit")
    logs = np.log(arr + shift)
    mu = float(np.mean(logs))
    sigma = float(np.std(logs, ddof=0))
    return LogNormalDistribution(mu=mu, sigma=sigma, shift=shift)


def fit_loguniform(
    values: Sequence[float],
    shift: float = DEFAULT_LOG_SHIFT,
) -> LogUniformDistribution:
    """MLE log-uniform fit: the support is the sample's log-range."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot fit a distribution to an empty sample")
    if np.any(arr + shift <= 0.0):
        raise ValueError("all values must exceed -shift for a log-uniform fit")
    logs = np.log(arr + shift)
    return LogUniformDistribution(
        log_lo=float(np.min(logs)),
        log_hi=float(np.max(logs)),
        shift=shift,
    )
