"""One-sided tolerance (confidence) bounds on quantiles of a normal population.

The paper's log-normal comparison method (Section 4.2) produces a level-C
upper confidence bound for the q-quantile of a normal population using the
K' factors from Table 4.6 of Guttman, *Statistical Tolerance Regions* (1970).
Those printed factors are exactly the noncentral-t construction:

    upper bound = m + K'(n, q, C) * s,
    K'(n, q, C) = t^{-1}_{df = n-1, nc = z_q * sqrt(n)}(C) / sqrt(n)

where ``m`` and ``s`` are the sample mean and standard deviation, ``z_q`` is
the standard-normal q-quantile, and ``t^{-1}`` is the quantile function of
the noncentral t distribution.  We compute K' directly from
``scipy.stats.nct`` instead of interpolating the printed table.
"""

from __future__ import annotations

import math

from scipy import stats as sps

__all__ = [
    "minimum_sample_size_normal",
    "normal_quantile_lower_factor",
    "normal_quantile_upper_factor",
]


def _validate(n: int, quantile: float, confidence: float) -> None:
    if n < 2:
        raise ValueError(f"tolerance factors require n >= 2, got n={n}")
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def normal_quantile_upper_factor(n: int, quantile: float, confidence: float) -> float:
    """K' such that ``m + K' * s`` is a level-``confidence`` upper bound on the
    ``quantile``-quantile of a normal population, from a sample of size n.

    ``s`` is the sample standard deviation with ddof=1 (the convention the
    noncentral-t derivation assumes).
    """
    _validate(n, quantile, confidence)
    z_q = float(sps.norm.ppf(quantile))
    nc = z_q * math.sqrt(n)
    t_val = float(sps.nct.ppf(confidence, df=n - 1, nc=nc))
    return t_val / math.sqrt(n)


def normal_quantile_lower_factor(n: int, quantile: float, confidence: float) -> float:
    """K such that ``m + K * s`` is a level-``confidence`` *lower* bound on the
    ``quantile``-quantile of a normal population.

    By symmetry of the normal distribution, a lower bound for the q-quantile
    is the negation of the upper-bound factor for the (1-q)-quantile.
    """
    _validate(n, quantile, confidence)
    return -normal_quantile_upper_factor(n, 1.0 - quantile, confidence)


def minimum_sample_size_normal() -> int:
    """The smallest sample size for which the tolerance construction is defined.

    The noncentral-t bound needs a sample standard deviation, hence n >= 2.
    (Contrast with the binomial method's data-driven minimum, e.g. 59
    observations for a 95%-confidence bound on the 0.95 quantile.)
    """
    return 2
