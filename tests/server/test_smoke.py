"""Fast end-to-end smoke test for the forecast daemon.

Runs in the default pytest selection: spawn a real daemon on an ephemeral
port, push a handful of jobs through the full submit/start/forecast cycle,
and check the operational surface (healthz, metrics) answers sanely.
"""


def test_server_smoke(daemon):
    client, _ = daemon

    health = client.healthz()
    assert health["status"] == "ok"

    quotes = []
    for i in range(70):
        now = i * 100.0
        quotes.append(client.submit(f"smoke-{i}", "batch", procs=2, now=now))
        wait = client.start(f"smoke-{i}", now=now + 60.0 + i % 3)
        assert wait >= 60.0
    assert quotes[-1] is not None  # trained and quotable by the end

    bound = client.forecast("batch", procs=2)
    assert bound is not None and bound >= 60.0

    metrics = client.metrics()
    assert metrics["requests"]["submit"] == 70
    assert metrics["requests"]["start"] == 70
    assert metrics["durability"]["events_journaled"] == 140
    assert metrics["pending_jobs"] == 0
    assert metrics["predictor_banks"]["batch[1-4]"] == 70
