"""Property-based tests of the wire protocol.

Two contracts a network server lives or dies by:

* **round-trip** — any valid request a client can express survives
  ``encode`` -> ``parse_request`` with every field intact, for arbitrary
  unicode job/queue names and any representable numbers;
* **total robustness** — *no* byte sequence thrown at the request path
  crashes it: parsing either returns a normalized dict or raises
  :class:`ProtocolError` with a stable code, and the daemon's line
  processor always answers with a structured error response instead of
  closing the connection.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import protocol
from repro.server.daemon import ForecastServer
from repro.service.forecaster import ForecasterConfig, QueueForecaster

# Any unicode except the two characters JSON itself escapes into \n-free
# output anyway is fine — json.dumps never emits a raw newline, so the
# NDJSON framing is safe for arbitrary text fields.  Test exactly that.
TEXT = st.text(min_size=1, max_size=50)
IDS = st.one_of(st.none(), st.integers(), st.text(max_size=20))
NOW = st.one_of(
    st.none(),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.integers(min_value=0, max_value=10**12),
)


def encode_line(request: dict) -> bytes:
    """Client-side framing: compact JSON + newline, as ForecastClient sends."""
    line = json.dumps(
        {k: v for k, v in request.items() if v is not None},
        separators=(",", ":"),
    ).encode("utf-8")
    assert b"\n" not in line  # NDJSON framing invariant
    return line


class TestRoundTrip:
    @given(job=TEXT, queue=TEXT, procs=st.integers(1, 10**6), now=NOW, rid=IDS)
    @settings(max_examples=200, deadline=None)
    def test_submit_round_trips(self, job, queue, procs, now, rid):
        wire = encode_line(
            {"op": "submit", "job": job, "queue": queue, "procs": procs,
             "now": now, "id": rid}
        )
        parsed = protocol.parse_request(wire)
        assert parsed["op"] == "submit"
        assert parsed["job"] == job
        assert parsed["queue"] == queue
        assert parsed["procs"] == procs
        assert parsed["id"] == rid
        if now is None:
            assert parsed["now"] is None
        else:
            assert parsed["now"] == pytest.approx(float(now))

    @given(job=TEXT, now=NOW, rid=IDS)
    @settings(max_examples=100, deadline=None)
    def test_start_and_cancel_round_trip(self, job, now, rid):
        start = protocol.parse_request(
            encode_line({"op": "start", "job": job, "now": now, "id": rid})
        )
        assert (start["job"], start["id"]) == (job, rid)
        cancel = protocol.parse_request(
            encode_line({"op": "cancel", "job": job, "id": rid})
        )
        assert (cancel["job"], cancel["id"]) == (job, rid)

    @given(queue=TEXT, procs=st.one_of(st.none(), st.integers(1, 10**6)))
    @settings(max_examples=100, deadline=None)
    def test_forecast_round_trips(self, queue, procs):
        parsed = protocol.parse_request(
            encode_line({"op": "forecast", "queue": queue, "procs": procs})
        )
        assert parsed["queue"] == queue
        assert parsed["procs"] == procs

    @given(rid=IDS)
    @settings(max_examples=50, deadline=None)
    def test_response_encoding_round_trips(self, rid):
        ok = json.loads(protocol.encode(protocol.ok_response(rid, {"x": 1})))
        assert ok == {"id": rid, "ok": True, "result": {"x": 1}}
        err = json.loads(protocol.encode(protocol.error_response(rid, "c", "m")))
        assert err["ok"] is False and err["error"]["code"] == "c"


class TestTotalRobustness:
    @given(line=st.binary(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_escape_protocol_error(self, line):
        """parse_request is total: a dict out, or ProtocolError — nothing else."""
        try:
            parsed = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            assert exc.code in {"bad-json", "bad-request", "unknown-op"}
        else:
            assert parsed["op"] in protocol.OPS

    @given(payload=st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False), st.text(max_size=20)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=10,
    ))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_json_never_escapes_protocol_error(self, payload):
        """Valid JSON of any shape gets the same all-or-ProtocolError treatment."""
        line = json.dumps(payload).encode()
        try:
            parsed = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            assert exc.code in {"bad-json", "bad-request", "unknown-op"}
        else:
            assert parsed["op"] in protocol.OPS

    def test_oversize_line_is_a_bad_request_not_a_crash(self):
        with pytest.raises(protocol.ProtocolError) as info:
            protocol.parse_request(b"x" * (protocol.MAX_LINE_BYTES + 1))
        assert info.value.code == "bad-request"


@pytest.fixture(scope="module")
def server():
    """An in-process server (no sockets): _process_line is synchronous."""
    srv = ForecastServer()
    srv.forecaster = QueueForecaster(ForecasterConfig(training_jobs=1))
    return srv


class TestDaemonNeverDropsTheConnection:
    """The daemon contract: every line gets a response line, valid or not.

    ``_process_line`` is the entire per-request path between the stream
    reader and the stream writer; proving it total proves a malformed
    frame cannot close the connection.
    """

    @given(line=st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_get_a_structured_error(self, server, line):
        response = server._process_line(line)
        assert isinstance(response, dict)
        assert response["ok"] in (True, False)
        if not response["ok"]:
            assert isinstance(response["error"]["code"], str)
        # And the response survives NDJSON framing.
        assert protocol.encode(response).endswith(b"\n")

    @given(job=TEXT, queue=TEXT, rid=IDS)
    @settings(max_examples=100, deadline=None)
    def test_valid_mutations_with_arbitrary_text_succeed(self, server, job, queue, rid):
        response = server._process_line(
            encode_line({"op": "submit", "job": job, "queue": queue,
                         "procs": 1, "now": 0.0, "id": rid})
        )
        # Fresh random job ids almost always succeed; a repeat drawn by
        # hypothesis is a legitimate 'conflict' — both keep the connection.
        assert response["ok"] or response["error"]["code"] == "conflict"
        assert response["id"] == rid

    def test_error_code_per_malformation_is_stable(self, server):
        cases = {
            b"not json at all": "bad-json",
            b"[1,2,3]": "bad-request",
            b'{"op": 5}': "bad-request",
            b'{"op": "warp"}': "unknown-op",
            b'{"op": "submit", "job": "j"}': "bad-request",
            b'{"op": "submit", "job": "j", "queue": "q", "procs": 0}': "bad-request",
            b'{"op": "start"}': "bad-request",
            b'{"op": "start", "job": "ghost"}': "unknown-job",
        }
        for line, code in cases.items():
            response = server._process_line(line)
            assert not response["ok"]
            assert response["error"]["code"] == code, line
