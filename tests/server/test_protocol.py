"""Unit tests for the wire protocol and the metrics primitives."""

import json

import pytest

from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    encode,
    error_response,
    http_request_to_op,
    looks_like_http,
    ok_response,
    parse_http_request_line,
    parse_request,
)


def parse(obj) -> dict:
    return parse_request(json.dumps(obj).encode())


class TestParseRequest:
    def test_submit_roundtrip(self):
        request = parse(
            {"op": "submit", "id": 3, "job": "a", "queue": "q", "procs": 4,
             "now": 12.5}
        )
        assert request == {
            "op": "submit", "id": 3, "job": "a", "queue": "q", "procs": 4,
            "now": 12.5,
        }

    def test_now_is_optional_and_validated(self):
        assert parse({"op": "start", "job": "a"})["now"] is None
        with pytest.raises(ProtocolError) as err:
            parse({"op": "start", "job": "a", "now": "yesterday"})
        assert err.value.code == "bad-request"

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(b"{nope\n")
        assert err.value.code == "bad-json"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(b"[1,2]\n")
        assert err.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            parse({"op": "frobnicate"})
        assert err.value.code == "unknown-op"

    def test_missing_fields(self):
        for bad in (
            {"op": "submit", "job": "a", "queue": "q"},  # no procs
            {"op": "submit", "job": "a", "procs": 1},  # no queue
            {"op": "start"},  # no job
            {"op": "forecast"},  # no queue
            {"op": "outlook"},  # no queue
        ):
            with pytest.raises(ProtocolError) as err:
                parse(bad)
            assert err.value.code == "bad-request"

    def test_type_validation(self):
        for bad in (
            {"op": "submit", "job": 7, "queue": "q", "procs": 1},
            {"op": "submit", "job": "a", "queue": "q", "procs": "four"},
            {"op": "submit", "job": "a", "queue": "q", "procs": True},
            {"op": "submit", "job": "a", "queue": "q", "procs": 0},
            {"op": "forecast", "queue": "q", "procs": -1},
        ):
            with pytest.raises(ProtocolError):
                parse(bad)

    def test_oversized_line_rejected(self):
        line = b'{"op": "healthz", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == "bad-request"

    def test_every_op_is_parseable(self):
        fields = {
            "submit": {"job": "a", "queue": "q", "procs": 1},
            "start": {"job": "a"},
            "cancel": {"job": "a"},
            "forecast": {"queue": "q"},
            "outlook": {"queue": "q"},
        }
        for op in OPS:
            assert parse({"op": op, **fields.get(op, {})})["op"] == op


class TestResponses:
    def test_ok_and_error_shapes(self):
        assert ok_response(1, {"x": 2}) == {"id": 1, "ok": True, "result": {"x": 2}}
        err = error_response(None, "bad-json", "nope")
        assert err["ok"] is False and err["error"]["code"] == "bad-json"

    def test_encode_is_one_json_line(self):
        data = encode(ok_response(5, []))
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert json.loads(data) == {"id": 5, "ok": True, "result": []}


class TestHttp:
    def test_detection(self):
        assert looks_like_http(b"GET /healthz HTTP/1.1\r\n")
        assert not looks_like_http(b'{"op": "healthz"}\n')

    def test_request_line_parsing(self):
        method, path, query = parse_http_request_line(
            b"GET /forecast?queue=normal&procs=4 HTTP/1.1"
        )
        assert (method, path) == ("GET", "/forecast")
        assert query == {"queue": "normal", "procs": "4"}

    def test_route_mapping(self):
        request = http_request_to_op("GET", "/forecast", {"queue": "q", "procs": "8"})
        assert request["op"] == "forecast"
        assert request["procs"] == 8
        assert http_request_to_op("GET", "/queues", {})["op"] == "queues"

    def test_missing_queue_param(self):
        with pytest.raises(ProtocolError) as err:
            http_request_to_op("GET", "/forecast", {})
        assert err.value.code == "bad-request"

    def test_unroutable(self):
        with pytest.raises(ProtocolError) as err:
            http_request_to_op("GET", "/nope", {})
        assert err.value.code == "http-404"
        with pytest.raises(ProtocolError) as err:
            http_request_to_op("POST", "/healthz", {})
        assert err.value.code == "http-405"


class TestLatencyHistogram:
    def test_quantiles_bracket_observations(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(0.002)
        hist.observe(1.7)
        assert hist.count == 101
        assert 0.001 <= hist.quantile(0.5) <= 0.005
        assert hist.quantile(0.99) <= 2.5
        assert hist.max == pytest.approx(1.7)

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.quantile(0.5) is None
        assert hist.snapshot()["p99_ms"] is None

    def test_snapshot_units_are_ms(self):
        hist = LatencyHistogram()
        hist.observe(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["mean_ms"] == pytest.approx(250.0)


class TestServerMetrics:
    def test_error_counting(self):
        metrics = ServerMetrics()
        metrics.record_request("submit", 0.001, True)
        metrics.record_request("submit", 0.002, False, "conflict")
        assert metrics.requests["submit"] == 2
        assert metrics.errors == {"conflict": 1}

    def test_render_text_is_prometheus_shaped(self):
        metrics = ServerMetrics()
        metrics.record_request("forecast", 0.0005, True)
        metrics.record_loop_lag(0.01)
        text = metrics.render_text()
        assert 'bmbp_requests_total{op="forecast"} 1' in text
        assert "bmbp_event_loop_lag_seconds 0.01" in text
        for line in text.splitlines():
            assert line.startswith(("#", "bmbp_"))

    def test_snapshot_includes_forecaster_gauges(self):
        from repro.service import ForecasterConfig, QueueForecaster

        forecaster = QueueForecaster(ForecasterConfig(by_bin=False))
        forecaster.job_submitted("a", "q", 1, now=0.0)
        snap = ServerMetrics().snapshot(forecaster)
        assert snap["pending_jobs"] == 1
        assert "q[all]" in snap["predictor_banks"]
