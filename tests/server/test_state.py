"""Unit tests for checkpoint + journal durability (no network involved)."""

import json

import pytest

from repro.server.state import StateError, StateStore, apply_event
from repro.service import ForecasterConfig, QueueForecaster

CONFIG = ForecasterConfig(training_jobs=5, by_bin=False, epoch=0.0)


def drive(store, forecaster, lo, hi):
    """Apply + journal a deterministic event stream, like the daemon does."""
    for i in range(lo, hi):
        submit = {"op": "submit", "job": f"j{i}", "queue": "q", "procs": 1,
                  "now": i * 400.0}
        apply_event(forecaster, submit)
        store.journal(submit)
        start = {"op": "start", "job": f"j{i}", "now": i * 400.0 + 50.0 + i % 5}
        apply_event(forecaster, start)
        store.journal(start)


class TestJournalReplay:
    def test_recover_from_journal_only(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 80)
        live_bound = forecaster.forecast("q")
        store.close()

        fresh_store = StateStore(tmp_path)
        recovered, replayed = fresh_store.recover(CONFIG)
        assert replayed == 160
        assert fresh_store.seq == 160
        assert recovered.forecast("q") == live_bound

    def test_checkpoint_plus_journal(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 40)
        store.checkpoint(forecaster)
        assert store.events_since_checkpoint == 0
        drive(store, forecaster, 40, 80)
        live_bound = forecaster.forecast("q")
        store.close()

        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 80  # only post-checkpoint events replayed
        assert recovered.forecast("q") == live_bound

    def test_checkpoint_compacts_journal(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.checkpoint(forecaster)
        store.close()
        # Every entry is covered by the checkpoint: all that may remain is
        # the freshly opened (empty) active segment.
        leftover = sorted(tmp_path.glob("journal-*.ndjson"))
        assert sum(p.stat().st_size for p in leftover) == 0
        assert store.segments_compacted >= 1

    def test_pre_checkpoint_entries_skipped(self, tmp_path):
        """Crash between checkpoint write and journal truncation is safe."""
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 20)
        # Checkpoint WITHOUT truncating, as if we died mid-checkpoint: write
        # the checkpoint file manually using the store's serializer state.
        checkpoint = {
            "version": 1,
            "seq": store.seq,
            "forecaster": forecaster.to_state(),
        }
        (tmp_path / "checkpoint.json").write_text(json.dumps(checkpoint))
        store.close()

        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 0  # every journal seq <= checkpoint seq
        assert recovered.forecast("q") == forecaster.forecast("q")

    def test_torn_final_line_is_dropped(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.close()
        path = sorted(tmp_path.glob("journal-*.ndjson"))[-1]
        path.write_bytes(path.read_bytes() + b'{"op":"submit","job":"torn')

        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 20
        assert recovered.pending_count() == 0

    def test_corrupt_mid_journal_raises(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.close()
        path = sorted(tmp_path.glob("journal-*.ndjson"))[-1]
        lines = path.read_bytes().splitlines(keepends=True)
        lines[3] = b"garbage not json\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(StateError):
            StateStore(tmp_path).recover(CONFIG)

    def test_corrupt_checkpoint_raises(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text("{truncated")
        with pytest.raises(StateError):
            StateStore(tmp_path).recover(CONFIG)

    def test_checkpoint_config_wins_over_boot_config(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        store.checkpoint(forecaster)
        store.close()
        other = ForecasterConfig(training_jobs=99, by_bin=True)
        recovered, _ = StateStore(tmp_path).recover(other)
        assert recovered.config == CONFIG  # persisted parameters win

    def test_journal_requires_open(self, tmp_path):
        store = StateStore(tmp_path)
        with pytest.raises(StateError):
            store.journal({"op": "cancel", "job": "x"})


class TestApplyEvent:
    def test_unknown_op(self):
        with pytest.raises(StateError):
            apply_event(QueueForecaster(CONFIG), {"op": "explode"})

    def test_cancel_roundtrip(self):
        forecaster = QueueForecaster(CONFIG)
        apply_event(
            forecaster,
            {"op": "submit", "job": "a", "queue": "q", "procs": 1, "now": 0.0},
        )
        assert forecaster.is_pending("a")
        apply_event(forecaster, {"op": "cancel", "job": "a"})
        assert not forecaster.is_pending("a")
