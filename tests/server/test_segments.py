"""Segmented-journal durability: rolls, torn tails at boundaries, compaction
races, group commit, and the replication-facing read/append paths."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.server.state import (
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
    StateError,
    StateStore,
    apply_event,
)
from repro.service import ForecasterConfig, QueueForecaster
from repro.verify.faults import CRASH_EXIT_CODE

CONFIG = ForecasterConfig(training_jobs=5, by_bin=False, epoch=0.0)

#: Tiny segments: every couple of events rolls a new file, so a short
#: stream exercises the multi-segment code paths a production run only
#: hits after months.
TINY_SEGMENT = 256


def segments(directory):
    return sorted(Path(directory).glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"))


def drive(store, forecaster, lo, hi, queue="q"):
    for i in range(lo, hi):
        submit = {"op": "submit", "job": f"j{i}", "queue": queue, "procs": 1,
                  "now": i * 400.0}
        apply_event(forecaster, submit)
        store.journal(submit)
        start = {"op": "start", "job": f"j{i}", "now": i * 400.0 + 50.0 + i % 5}
        apply_event(forecaster, start)
        store.journal(start)


class TestSegmentation:
    def test_appends_roll_to_new_segments(self, tmp_path):
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 20)
        store.close()
        paths = segments(tmp_path)
        assert len(paths) > 2
        # Filenames encode each segment's first seq, strictly increasing.
        firsts = [int(p.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
                  for p in paths]
        assert firsts == sorted(firsts)
        assert firsts[0] == 1

    def test_recover_spans_segments(self, tmp_path):
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 30)
        live = forecaster.forecast("q")
        store.close()

        fresh = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        recovered, replayed = fresh.recover(CONFIG)
        assert replayed == 60
        assert fresh.seq == 60
        assert recovered.forecast("q") == live

    def test_restart_never_appends_to_old_segment(self, tmp_path):
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 5)
        store.close()
        before = {p.name: p.stat().st_size for p in segments(tmp_path)}

        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 5, 10)
        store.close()
        for name, size in before.items():
            assert (tmp_path / name).stat().st_size == size


class TestTornTails:
    def test_torn_tail_then_later_segment(self, tmp_path):
        """The ISSUE scenario: segment k ends in a torn record, intact
        segment k+1 (from the post-crash restart) follows.  Replay drops
        only the torn line and recovers everything acknowledged."""
        store = StateStore(tmp_path)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.close()
        torn = segments(tmp_path)[-1]
        torn.write_bytes(
            torn.read_bytes() + b'{"op":"submit","job":"torn","seq":21'
        )

        # Post-crash restart: recovery tolerates the tail, then opens a
        # fresh segment (never appending after the tear).
        store = StateStore(tmp_path)
        forecaster, replayed = store.recover(CONFIG)
        assert replayed == 20
        store.open()
        drive(store, forecaster, 10, 20)
        live = forecaster.forecast("q")
        store.close()
        assert len(segments(tmp_path)) >= 2

        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 40
        assert recovered.forecast("q") == live
        assert recovered.pending_count() == 0  # the torn submit is gone

    def test_torn_tail_of_non_final_segment_is_dropped(self, tmp_path):
        """A torn line at the END of any segment is a crash artifact, even
        when later segments exist — it must not read as interior
        corruption."""
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.close()
        paths = segments(tmp_path)
        assert len(paths) >= 2
        first = paths[0]
        first.write_bytes(first.read_bytes() + b'{"op":"cancel","job"')

        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 20  # every intact (= every acknowledged) entry

    def test_corrupt_interior_of_any_segment_raises(self, tmp_path):
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.close()
        first = segments(tmp_path)[0]
        lines = first.read_bytes().splitlines(keepends=True)
        lines[0] = b"garbage not json\n"
        first.write_bytes(b"".join(lines))
        with pytest.raises(StateError):
            StateStore(tmp_path).recover(CONFIG)


class TestCompaction:
    def test_compact_keeps_post_horizon_segments(self, tmp_path):
        """Compaction racing a checkpoint: deletion is decided purely from
        immutable filenames, so a stale horizon can only leave redundant
        segments — never remove one that still matters."""
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 30)
        live = forecaster.forecast("q")
        # A checkpoint that covers the first 15 jobs (entries 1..30) landed
        # while later entries were still streaming in; compaction runs with
        # that stale horizon.
        half = QueueForecaster(CONFIG)
        for i in range(15):
            apply_event(half, {"op": "submit", "job": f"j{i}", "queue": "q",
                               "procs": 1, "now": i * 400.0})
            apply_event(half, {"op": "start", "job": f"j{i}",
                               "now": i * 400.0 + 50.0 + i % 5})
        mid = 30
        (tmp_path / "checkpoint.json").write_text(json.dumps({
            "version": 1, "seq": mid, "forecaster": half.to_state(),
        }))
        removed = store.compact(mid)
        store.close()
        assert removed >= 1
        # Everything past the horizon must still be on disk…
        surviving = {e["seq"] for p in segments(tmp_path)
                     for e in map(json.loads, p.read_bytes().splitlines())}
        assert set(range(mid + 1, store.seq + 1)) <= surviving
        # …and checkpoint + surviving tail reproduce the live bounds.
        recovered, replayed = StateStore(tmp_path).recover(CONFIG)
        assert replayed == 30  # exactly entries 31..60; redundancy skipped
        assert recovered.forecast("q") == live

    def test_compact_is_idempotent_and_spares_newest(self, tmp_path):
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 10)
        store.checkpoint(forecaster)
        again = store.compact(store.seq)
        store.close()
        assert again == 0
        assert len(segments(tmp_path)) >= 1  # the active segment survives

    def test_crash_between_checkpoint_and_compaction(self, tmp_path):
        """The `journal.compact:crash` window: checkpoint renamed, segment
        deletion never ran.  The redundant segments must be skipped (not
        re-applied) on recovery, and a post-restart run stays
        bit-identical."""
        script = (
            "from repro.server.state import StateStore, apply_event\n"
            "from repro.service import ForecasterConfig\n"
            "import sys\n"
            "cfg = ForecasterConfig(training_jobs=5, by_bin=False, epoch=0.0)\n"
            "store = StateStore(sys.argv[1], segment_bytes=256)\n"
            "f, _ = store.recover(cfg)\n"
            "store.open()\n"
            "for i in range(10):\n"
            "    s = {'op': 'submit', 'job': 'j%d' % i, 'queue': 'q',\n"
            "         'procs': 1, 'now': i * 400.0}\n"
            "    apply_event(f, s); store.journal(s)\n"
            "    t = {'op': 'start', 'job': 'j%d' % i, 'now': i * 400.0 + 50.0 + i % 5}\n"
            "    apply_event(f, t); store.journal(t)\n"
            "store.checkpoint(f)\n"
        )
        env = dict(os.environ)
        env["BMBP_FAULTS"] = "journal.compact:crash@1"
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env, capture_output=True, timeout=60,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr.decode()
        assert (tmp_path / "checkpoint.json").exists()
        assert segments(tmp_path), "redundant segments should have survived"

        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        recovered, replayed = store.recover(CONFIG)
        assert replayed == 0  # every surviving entry is covered by the checkpoint
        reference = QueueForecaster(CONFIG)
        ref_store = StateStore(tmp_path / "ref")
        reference, _ = ref_store.recover(CONFIG)
        ref_store.open()
        drive(ref_store, reference, 0, 10)
        ref_store.close()
        assert recovered.forecast("q") == reference.forecast("q")


class TestGroupCommit:
    def test_batch_equals_sequential(self, tmp_path):
        a_store = StateStore(tmp_path / "a")
        a, _ = a_store.recover(CONFIG)
        a_store.open()
        b_store = StateStore(tmp_path / "b")
        b, _ = b_store.recover(CONFIG)
        b_store.open()

        entries = []
        for i in range(8):
            entries.append({"op": "submit", "job": f"j{i}", "queue": "q",
                            "procs": 1, "now": i * 400.0})
            entries.append({"op": "start", "job": f"j{i}", "now": i * 400.0 + 60.0})
        for e in entries:
            apply_event(a, e)
            a_store.journal(dict(e))
        for e in entries:
            apply_event(b, e)
        seqs = b_store.journal_batch([dict(e) for e in entries])
        a_store.close()
        b_store.close()

        assert seqs == list(range(1, len(entries) + 1))
        ra, na = StateStore(tmp_path / "a").recover(CONFIG)
        rb, nb = StateStore(tmp_path / "b").recover(CONFIG)
        assert na == nb == len(entries)
        assert ra.forecast("q") == rb.forecast("q")

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = StateStore(tmp_path)
        store.recover(CONFIG)
        store.open()
        assert store.journal_batch([]) == []
        assert store.seq == 0
        store.close()


class TestReplicationPaths:
    def test_read_entries_since_exact_tail(self, tmp_path):
        store = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = store.recover(CONFIG)
        store.open()
        drive(store, forecaster, 0, 20)
        store.close()
        for horizon in (0, 1, 17, 39, 40):
            got = [e["seq"] for e in store.read_entries_since(horizon)]
            assert got == list(range(horizon + 1, 41)), f"horizon {horizon}"

    def test_read_entries_since_other_directory(self, tmp_path):
        """Promotion reads the dead primary's directory through a fresh
        store whose own seq is 0 — filename skipping must still work."""
        primary = StateStore(tmp_path, segment_bytes=TINY_SEGMENT)
        forecaster, _ = primary.recover(CONFIG)
        primary.open()
        drive(primary, forecaster, 0, 10)
        primary.close()

        reader = StateStore(tmp_path)  # no recover(): seq stays 0
        got = [e["seq"] for e in reader.read_entries_since(12)]
        assert got == list(range(13, 21))

    def test_journal_replicated_preserves_primary_seqs(self, tmp_path):
        store = StateStore(tmp_path)
        store.recover(CONFIG)
        store.open()
        store.journal_replicated({"op": "cancel", "job": "a", "seq": 7})
        assert store.seq == 7
        with pytest.raises(StateError):
            store.journal_replicated({"op": "cancel", "job": "b", "seq": 7})
        with pytest.raises(StateError):
            store.journal_replicated({"op": "cancel", "job": "c"})  # no seq
        store.journal_replicated({"op": "cancel", "job": "d", "seq": 9})
        store.close()
        got = [e["seq"] for e in store.read_entries_since(0)]
        assert got == [7, 9]

    def test_reset_to_snapshot_replaces_history(self, tmp_path):
        donor_store = StateStore(tmp_path / "donor")
        donor, _ = donor_store.recover(CONFIG)
        donor_store.open()
        drive(donor_store, donor, 0, 15)
        donor_store.close()

        follower = StateStore(tmp_path / "f", segment_bytes=TINY_SEGMENT)
        stale, _ = follower.recover(CONFIG)
        follower.open()
        drive(follower, stale, 0, 3, queue="stale")
        follower.reset_to_snapshot(donor, donor_store.seq)
        assert follower.seq == donor_store.seq
        assert follower.compacted_through == donor_store.seq
        # Post-snapshot replication continues entry-by-entry.
        follower.journal_replicated(
            {"op": "submit", "job": "late", "queue": "q", "procs": 1,
             "now": 9999.0, "seq": donor_store.seq + 1}
        )
        follower.close()

        recovered, replayed = StateStore(tmp_path / "f").recover(CONFIG)
        assert replayed == 1  # only the post-snapshot entry
        assert recovered.is_pending("late")
        assert "stale" not in recovered.queues()
