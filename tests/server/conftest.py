"""Fixtures for the server test suite.

Integration tests spawn real ``python -m repro serve`` subprocesses; the
session fixture guarantees the child can import ``repro`` regardless of
how pytest itself was launched.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro


@pytest.fixture(scope="session", autouse=True)
def _subprocess_can_import_repro():
    """Prepend the repro source root to PYTHONPATH for spawned daemons."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )


@pytest.fixture
def daemon(tmp_path):
    """A running durable daemon on an ephemeral port; yields (client, dir).

    Fast-training configuration so tests can reach quotable bounds with
    ~100 jobs; ``epoch=0`` refits on every submission, which makes quotes
    a pure function of history (and therefore deterministic for the
    recovery tests).
    """
    from repro.server import ForecastClient, read_port_file, spawn_daemon

    state_dir = tmp_path / "state"
    state_dir.mkdir()
    process = spawn_daemon(
        state_dir, extra_args=["--training-jobs", "5", "--epoch", "0"]
    )
    client = ForecastClient("127.0.0.1", read_port_file(state_dir))
    client.wait_until_up()
    yield client, state_dir
    client.close()
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=10.0)
        except Exception:
            process.kill()
            process.wait()


def feed_jobs(client, lo, hi, queue="normal", procs=4, gap=400.0):
    """Drive a deterministic submit/start stream through a client."""
    for i in range(lo, hi):
        submit_at = i * gap
        client.submit(f"j{i}", queue, procs, now=submit_at)
        client.start(f"j{i}", now=submit_at + 100.0 + (i % 7) * 37.0)
