"""Integration tests against a real daemon subprocess.

Each test spawns ``python -m repro serve`` on an ephemeral port (discovered
through the state directory's port file) and talks to it with the real
client library — the same path production traffic takes.
"""

import json
import signal
import socket
import threading
import time
import urllib.request

import pytest

from repro.server import (
    ForecastClient,
    ServerError,
    read_port_file,
    spawn_daemon,
)

from tests.server.conftest import feed_jobs


class TestProtocolSemantics:
    def test_submit_start_forecast_cycle(self, daemon):
        client, _ = daemon
        feed_jobs(client, 0, 80)
        bound = client.forecast("normal", procs=4)
        assert bound is not None and bound > 0
        outlook = client.outlook("normal")
        assert outlook["bins"]["1-4"]["trained"] is True
        assert outlook["bins"]["1-4"]["n_history"] == 80
        assert client.queues() == {"queues": ["normal"], "pending": 0}
        assert "normal" in client.describe()

    def test_double_submit_is_conflict(self, daemon):
        client, _ = daemon
        client.submit("dup", "q", 1, now=0.0)
        with pytest.raises(ServerError) as err:
            client.submit("dup", "q", 1, now=1.0)
        assert err.value.code == "conflict"

    def test_unknown_start_and_bad_event(self, daemon):
        client, _ = daemon
        with pytest.raises(ServerError) as err:
            client.start("ghost", now=0.0)
        assert err.value.code == "unknown-job"
        client.submit("early", "q", 1, now=100.0)
        with pytest.raises(ServerError) as err:
            client.start("early", now=50.0)
        assert err.value.code == "bad-event"

    def test_cancel(self, daemon):
        client, _ = daemon
        client.submit("c1", "q", 1, now=0.0)
        assert client.cancel("c1") is True
        assert client.cancel("c1") is False
        assert client.queues()["pending"] == 0

    def test_malformed_requests_get_structured_errors(self, daemon):
        """Garbage on the wire must answer with an error, not kill the
        connection — and valid requests on the same connection still work."""
        client, state_dir = daemon
        port = read_port_file(state_dir)
        with socket.create_connection(("127.0.0.1", port)) as sock:
            stream = sock.makefile("rwb")

            def roundtrip(raw: bytes) -> dict:
                stream.write(raw)
                stream.flush()
                return json.loads(stream.readline())

            bad_json = roundtrip(b"not json at all\n")
            assert bad_json["ok"] is False
            assert bad_json["error"]["code"] == "bad-json"
            bad_op = roundtrip(b'{"op": "explode"}\n')
            assert bad_op["error"]["code"] == "unknown-op"
            bad_fields = roundtrip(b'{"op": "submit", "job": "x"}\n')
            assert bad_fields["error"]["code"] == "bad-request"
            bad_type = roundtrip(b'{"op": "submit", "job": "x", "queue": "q", "procs": "many"}\n')
            assert bad_type["error"]["code"] == "bad-request"
            # The connection survived all of it:
            alive = roundtrip(b'{"op": "healthz", "id": 42}\n')
            assert alive["ok"] is True and alive["id"] == 42

    def test_request_ids_echoed_in_pipeline_order(self, daemon):
        client, state_dir = daemon
        port = read_port_file(state_dir)
        with socket.create_connection(("127.0.0.1", port)) as sock:
            stream = sock.makefile("rwb")
            for i in range(20):
                stream.write(
                    json.dumps({"op": "healthz", "id": i}).encode() + b"\n"
                )
            stream.flush()
            ids = [json.loads(stream.readline())["id"] for i in range(20)]
        assert ids == list(range(20))


class TestHttpReads:
    def test_healthz_forecast_and_404(self, daemon):
        client, state_dir = daemon
        feed_jobs(client, 0, 80)
        port = read_port_file(state_dir)
        base = f"http://127.0.0.1:{port}"

        health = json.loads(urllib.request.urlopen(f"{base}/healthz").read())
        assert health["result"]["status"] == "ok"

        forecast = json.loads(
            urllib.request.urlopen(f"{base}/forecast?queue=normal&procs=4").read()
        )
        assert forecast["result"]["bound"] == pytest.approx(
            client.forecast("normal", procs=4)
        )

        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"{base}/nope")
        assert err.value.code == 404

    def test_metrics_text_exposition(self, daemon):
        client, state_dir = daemon
        feed_jobs(client, 0, 5)
        port = read_port_file(state_dir)
        text = urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics"
        ).read().decode()
        assert 'bmbp_requests_total{op="submit"} 5' in text
        assert "bmbp_events_journaled_total 10" in text
        assert "bmbp_pending_jobs 0" in text
        assert 'bmbp_predictor_history_size{queue="normal",bin="1-4"} 5' in text


class TestConcurrency:
    def test_concurrent_clients_see_consistent_forecasts(self, daemon):
        """Readers hammering the daemon mid-ingest always see either the
        old or the new quote — never a torn/erroring state."""
        client, state_dir = daemon
        feed_jobs(client, 0, 80)
        port = read_port_file(state_dir)
        stop = threading.Event()
        seen = []
        failures = []

        def reader():
            local = ForecastClient("127.0.0.1", port)
            try:
                while not stop.is_set():
                    bound = local.forecast("normal", procs=4)
                    if bound is None:
                        failures.append("forecast regressed to None")
                        return
                    seen.append(bound)
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))
            finally:
                local.close()

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        feed_jobs(client, 80, 160)  # keep mutating while readers read
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not failures
        # Throughput here depends on machine load; all this asserts is that
        # every reader thread completed at least one successful round trip
        # while mutations were in flight (consistency, not speed).
        assert len(seen) >= len(threads)
        # Every observed quote matches some refit epoch the server actually
        # served; the final reads agree with the final state.
        assert client.forecast("normal", procs=4) is not None


class TestCrashRecovery:
    EXTRA = ["--training-jobs", "5", "--epoch", "0"]

    def _feed(self, client, lo, hi):
        feed_jobs(client, lo, hi)

    def test_kill_dash_nine_recovers_identical_bounds(self, tmp_path):
        """The acceptance criterion: kill -9 between checkpoints, restart,
        and every quote matches an uninterrupted run of the same stream."""
        # Run A: uninterrupted reference.
        dir_a = tmp_path / "a"
        proc_a = spawn_daemon(dir_a, extra_args=self.EXTRA)
        try:
            client_a = ForecastClient("127.0.0.1", read_port_file(dir_a))
            client_a.wait_until_up()
            self._feed(client_a, 0, 120)
            reference = {
                "forecast": client_a.forecast("normal", procs=4),
                "outlook": client_a.outlook("normal"),
                "describe": client_a.describe(),
            }
            client_a.close()
        finally:
            proc_a.terminate()
            proc_a.wait(timeout=10.0)

        # Run B: same stream, SIGKILLed mid-flight between checkpoints.
        dir_b = tmp_path / "b"
        proc_b = spawn_daemon(dir_b, extra_args=self.EXTRA)
        try:
            client_b = ForecastClient("127.0.0.1", read_port_file(dir_b))
            client_b.wait_until_up()
            self._feed(client_b, 0, 40)
            client_b.checkpoint()
            self._feed(client_b, 40, 70)  # journal-only tail
        finally:
            proc_b.send_signal(signal.SIGKILL)
            proc_b.wait(timeout=10.0)
        client_b.close()

        proc_b2 = spawn_daemon(dir_b, extra_args=self.EXTRA)
        try:
            client_b2 = ForecastClient("127.0.0.1", read_port_file(dir_b))
            client_b2.wait_until_up()
            durability = client_b2.metrics()["durability"]
            assert durability["replayed_on_boot"] == 60  # 30 submits + 30 starts
            self._feed(client_b2, 70, 120)
            assert client_b2.forecast("normal", procs=4) == reference["forecast"]
            assert client_b2.outlook("normal") == reference["outlook"]
            assert client_b2.describe() == reference["describe"]
            client_b2.close()
        finally:
            proc_b2.terminate()
            proc_b2.wait(timeout=10.0)

    def test_sigterm_drains_and_checkpoints(self, tmp_path):
        state_dir = tmp_path / "drain"
        process = spawn_daemon(
            state_dir, extra_args=self.EXTRA + ["--drain-timeout", "1.0"]
        )
        client = ForecastClient("127.0.0.1", read_port_file(state_dir))
        client.wait_until_up()
        client.submit("open-job", "q", 1, now=0.0)
        client.close()
        process.send_signal(signal.SIGTERM)
        # Generous ceiling: the drain itself is bounded by --drain-timeout
        # (1 s), but a loaded CI machine can stall the final checkpoint
        # write; 30 s distinguishes "slow box" from "hung shutdown".
        assert process.wait(timeout=30.0) == 0
        checkpoint = json.loads((state_dir / "checkpoint.json").read_text())
        assert "open-job" in checkpoint["forecaster"]["pending"]
        assert not (state_dir / "server.port").exists()

        # And the pending job survives into the next incarnation.
        process2 = spawn_daemon(state_dir, extra_args=self.EXTRA)
        try:
            client2 = ForecastClient("127.0.0.1", read_port_file(state_dir))
            client2.wait_until_up()
            wait = client2.start("open-job", now=500.0)
            assert wait == 500.0
            client2.close()
        finally:
            process2.terminate()
            process2.wait(timeout=10.0)
