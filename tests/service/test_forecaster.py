"""Tests for the live queue-delay forecasting service."""

import numpy as np
import pytest

from repro.service import ForecasterConfig, QueueForecaster


def drive(forecaster, waits, queue="normal", procs=1, start_time=0.0, gap=400.0):
    """Submit/start a stream of jobs with the given waits; returns quotes."""
    quotes = []
    for i, wait in enumerate(waits):
        submit = start_time + i * gap
        job_id = f"j{queue}{i}"
        quotes.append(forecaster.job_submitted(job_id, queue, procs, submit))
        forecaster.job_started(job_id, submit + float(wait))
    return quotes


class TestLifecycle:
    def test_quotes_none_until_trained(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=50, by_bin=False))
        waits = rng.lognormal(3, 1, 120)
        quotes = drive(forecaster, waits)
        assert all(q is None for q in quotes[:50])
        assert any(q is not None for q in quotes[60:])

    def test_wait_computed_from_submit_and_start(self):
        forecaster = QueueForecaster()
        forecaster.job_submitted("a", "normal", 4, now=100.0)
        wait = forecaster.job_started("a", now=350.0)
        assert wait == 250.0

    def test_double_submit_rejected(self):
        forecaster = QueueForecaster()
        forecaster.job_submitted("a", "q", 1, now=0.0)
        with pytest.raises(ValueError):
            forecaster.job_submitted("a", "q", 1, now=1.0)

    def test_unknown_start_rejected(self):
        with pytest.raises(KeyError):
            QueueForecaster().job_started("ghost", now=0.0)

    def test_start_before_submit_rejected(self):
        forecaster = QueueForecaster()
        forecaster.job_submitted("a", "q", 1, now=100.0)
        with pytest.raises(ValueError):
            forecaster.job_started("a", now=50.0)

    def test_cancel(self):
        forecaster = QueueForecaster()
        forecaster.job_submitted("a", "q", 1, now=0.0)
        forecaster.job_cancelled("a")
        assert forecaster.pending_count() == 0
        forecaster.job_cancelled("a")  # idempotent


class TestForecasts:
    def test_forecast_reflects_history(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=60, by_bin=False))
        waits = rng.lognormal(4, 1, 400)
        drive(forecaster, waits)
        bound = forecaster.forecast("normal")
        assert bound is not None
        # In the right ballpark of the true .95 quantile.
        true_q95 = float(np.quantile(waits, 0.95))
        assert 0.5 * true_q95 <= bound <= 5.0 * true_q95

    def test_unknown_queue_has_no_forecast(self):
        assert QueueForecaster().forecast("nonexistent") is None

    def test_bin_specific_forecast_overrides_queue_level(self, rng):
        config = ForecasterConfig(training_jobs=60, by_bin=True)
        forecaster = QueueForecaster(config)
        # Small jobs wait ~e^3, large jobs ~e^6.
        drive(forecaster, rng.lognormal(3, 0.4, 200), procs=1, gap=300.0)
        drive(forecaster, rng.lognormal(6, 0.4, 200), procs=32,
              start_time=1e6, gap=300.0)
        small = forecaster.forecast("normal", procs=1)
        large = forecaster.forecast("normal", procs=32)
        assert small is not None and large is not None
        assert large > 3 * small

    def test_queue_level_forecast_without_procs(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=60))
        drive(forecaster, rng.lognormal(4, 1, 200))
        assert forecaster.forecast("normal") is not None

    def test_describe_lists_predictors(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=30))
        drive(forecaster, rng.lognormal(3, 1, 100))
        text = forecaster.describe()
        assert "normal" in text
        assert "trained" in text
        assert QueueForecaster().describe() == "no queues observed yet"

    def test_queues_listing(self, rng):
        forecaster = QueueForecaster()
        drive(forecaster, rng.lognormal(3, 1, 10), queue="a")
        drive(forecaster, rng.lognormal(3, 1, 10), queue="b", start_time=1e5)
        assert forecaster.queues() == ["a", "b"]


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        config = ForecasterConfig(training_jobs=60, by_bin=True)
        forecaster = QueueForecaster(config)
        drive(forecaster, rng.lognormal(4, 1, 300), procs=4)
        forecaster.job_submitted("open", "normal", 4, now=1e9)

        path = tmp_path / "state.json"
        forecaster.save(path)
        restored = QueueForecaster.load(path)

        assert restored.config == config
        assert restored.pending_count() == 1
        assert restored.forecast("normal", procs=4) == pytest.approx(
            forecaster.forecast("normal", procs=4)
        )
        # The restored pending job can still be started.
        wait = restored.job_started("open", now=1e9 + 500.0)
        assert wait == 500.0

    def test_state_is_json_serializable(self, rng):
        import json

        forecaster = QueueForecaster()
        drive(forecaster, rng.lognormal(3, 1, 50))
        json.dumps(forecaster.to_state())  # must not raise

    def test_version_check(self):
        with pytest.raises(ValueError):
            QueueForecaster.from_state({"version": 99})

    def test_restored_forecaster_continues_identically(self, rng):
        """Restart transparency: a restored forecaster quotes the same
        bounds as the original for an identical continuation stream.

        With ``epoch=500`` and ``gap=400`` refits land on alternating
        submissions, so the snapshot is taken mid-refit-cycle — the test
        fails unless the cached quote, staleness counter, and refit clock
        all round-trip exactly (the version-2 state additions).
        """
        config = ForecasterConfig(training_jobs=40, by_bin=True, epoch=500.0)
        original = QueueForecaster(config)
        waits = rng.lognormal(4, 1, 90)
        drive(original, waits, procs=4)

        restored = QueueForecaster.from_state(original.to_state())

        continuation = rng.lognormal(4, 1, 40)
        quotes_a = drive(original, continuation, procs=4, start_time=1e6)
        quotes_b = drive(restored, continuation, procs=4, start_time=1e6)
        assert quotes_a == quotes_b
        assert original.forecast("normal", procs=4) == restored.forecast(
            "normal", procs=4
        )
        assert original.outlook("normal") == restored.outlook("normal")

    def test_version1_state_still_loads(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=30, by_bin=False))
        drive(forecaster, rng.lognormal(4, 1, 100))
        state = forecaster.to_state()
        state["version"] = 1
        for snapshot in state["predictors"].values():
            for key in ("current", "since_refit", "miss_run", "last_refit"):
                snapshot.pop(key)
        restored = QueueForecaster.from_state(state)
        # v1 carried no cached quote; it is recomputed from history.
        assert restored.forecast("normal") is not None

    def test_failed_save_leaves_original_intact(self, rng, tmp_path, monkeypatch):
        forecaster = QueueForecaster(ForecasterConfig(by_bin=False))
        drive(forecaster, rng.lognormal(3, 1, 20))
        path = tmp_path / "state.json"
        forecaster.save(path)
        before = path.read_bytes()

        monkeypatch.setattr(
            QueueForecaster, "to_state", lambda self: (_ for _ in ()).throw(OSError)
        )
        with pytest.raises(OSError):
            forecaster.save(path)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []


class TestPureQueries:
    def test_forecast_does_not_mutate_state(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=30, epoch=0.0))
        drive(forecaster, rng.lognormal(4, 1, 100), procs=4)
        before = forecaster.to_state()
        for _ in range(5):
            forecaster.forecast("normal", procs=4)
            forecaster.forecast("normal")
            forecaster.outlook("normal")
        assert forecaster.to_state() == before

    def test_outlook_structure(self, rng):
        forecaster = QueueForecaster(ForecasterConfig(training_jobs=30))
        drive(forecaster, rng.lognormal(4, 1, 100), procs=4)
        outlook = forecaster.outlook("normal")
        assert outlook["quantile"] == 0.95
        assert set(outlook["bins"]) == {"all", "1-4"}
        for entry in outlook["bins"].values():
            assert entry["trained"] is True
            assert entry["n_history"] == 100

    def test_explicit_refit_refreshes_stale_quotes(self, rng):
        # An enormous epoch: the only refit happens on the very first
        # (empty-history) submission, so reads stay None until an explicit
        # refit call — which is exactly what the daemon's epoch tick does.
        forecaster = QueueForecaster(
            ForecasterConfig(training_jobs=30, by_bin=False, epoch=1e12)
        )
        drive(forecaster, rng.lognormal(4, 1, 100))
        assert forecaster.forecast("normal") is None
        assert forecaster.refit(now=1e6) >= 1
        assert forecaster.forecast("normal") is not None


class TestEpochBehavior:
    def test_quotes_stable_within_epoch(self, rng):
        config = ForecasterConfig(training_jobs=60, by_bin=False, epoch=1e9)
        forecaster = QueueForecaster(config)
        drive(forecaster, rng.lognormal(4, 1, 100), gap=10.0)
        # After training, with an enormous epoch, consecutive quotes at
        # nearby times are identical even as history grows.
        a = forecaster.job_submitted("x1", "normal", 1, now=1e6)
        forecaster.job_started("x1", now=1e6 + 5.0)
        b = forecaster.job_submitted("x2", "normal", 1, now=1e6 + 10.0)
        forecaster.job_started("x2", now=1e6 + 15.0)
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ForecasterConfig(epoch=-1.0)
        with pytest.raises(ValueError):
            ForecasterConfig(training_jobs=0)
