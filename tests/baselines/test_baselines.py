"""Tests for the baseline predictors."""

import numpy as np
import pytest

from repro.baselines import (
    DowneyLogUniformPredictor,
    MaxObservedPredictor,
    MeanWaitPredictor,
    PointQuantilePredictor,
)
from repro.core.predictor import BoundKind
from repro.simulator.replay import replay_single

from tests.conftest import make_trace


def feed(predictor, values):
    for value in values:
        predictor.observe(float(value))
    predictor.refit()
    return predictor


class TestMaxObserved:
    def test_quotes_the_maximum(self, rng):
        values = rng.lognormal(3, 1, 200)
        predictor = feed(MaxObservedPredictor(), values)
        assert predictor.predict() == values.max()

    def test_lower_kind_quotes_minimum(self, rng):
        values = rng.lognormal(3, 1, 200)
        predictor = feed(MaxObservedPredictor(kind=BoundKind.LOWER), values)
        assert predictor.predict() == values.min()

    def test_nearly_always_correct_but_useless(self, rng):
        trace = make_trace(rng.lognormal(4, 1.5, 2000))
        result = replay_single(trace, MaxObservedPredictor())
        assert result.fraction_correct > 0.99
        # ... and absurdly conservative: the typical wait is a tiny fraction
        # of the quoted bound.
        assert result.median_ratio < 0.05

    def test_extreme_recomputed_after_trim(self):
        predictor = MaxObservedPredictor(trim=True)
        for value in [1.0, 100.0] + [5.0] * 100:
            predictor.observe(value)
        predictor.history.trim_to_recent(50)
        predictor._on_history_trimmed()
        predictor.refit()
        assert predictor.predict() == 5.0


class TestPointQuantile:
    def test_quotes_empirical_quantile(self, rng):
        values = rng.lognormal(3, 1, 500)
        predictor = feed(PointQuantilePredictor(), values)
        expected = float(np.sort(values)[int(np.ceil(500 * 0.95)) - 1])
        assert predictor.predict() == expected

    def test_below_bmbp_bound(self, rng):
        from repro.core.bmbp import BMBPPredictor

        values = rng.lognormal(3, 1, 500)
        point = feed(PointQuantilePredictor(), values).predict()
        bmbp = feed(BMBPPredictor(), values).predict()
        assert point <= bmbp  # no confidence margin


class TestDowney:
    def test_bound_within_sample_log_range(self, rng):
        values = rng.lognormal(3, 1, 300)
        predictor = feed(DowneyLogUniformPredictor(), values)
        assert values.min() <= predictor.predict() <= values.max()

    def test_needs_two_points(self):
        predictor = DowneyLogUniformPredictor()
        predictor.observe(5.0)
        predictor.refit()
        assert predictor.predict() is None

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            DowneyLogUniformPredictor(shift=-1.0)


class TestMeanWait:
    def test_quotes_the_mean(self):
        predictor = feed(MeanWaitPredictor(), [1.0, 2.0, 3.0])
        assert predictor.predict() == pytest.approx(2.0)

    def test_under_covers_heavy_tails(self, rng):
        trace = make_trace(rng.lognormal(4, 1.5, 2000))
        result = replay_single(trace, MeanWaitPredictor())
        # For a heavy-tailed distribution the mean sits far below the .95
        # quantile: nowhere near the 0.95 correctness target.
        assert result.fraction_correct < 0.95

    def test_empty_history(self):
        predictor = MeanWaitPredictor()
        predictor.refit()
        assert predictor.predict() is None
