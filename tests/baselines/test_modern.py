"""Tests for the bootstrap and Weibull baseline predictors."""

import numpy as np
import pytest

from repro.baselines import BootstrapQuantilePredictor, WeibullPredictor
from repro.core.bmbp import BMBPPredictor
from repro.core.predictor import BoundKind
from repro.simulator.replay import replay_single

from tests.conftest import make_trace


def feed(predictor, values):
    for value in values:
        predictor.observe(float(value))
    predictor.refit()
    return predictor


class TestBootstrap:
    def test_bound_near_bmbp_on_iid_data(self, rng):
        values = rng.lognormal(4, 1, 2000)
        boot = feed(BootstrapQuantilePredictor(seed=1), values).predict()
        bmbp = feed(BMBPPredictor(), values).predict()
        # Both target the same object; they should agree within ~25%.
        assert boot == pytest.approx(bmbp, rel=0.25)

    def test_bound_above_point_quantile(self, rng):
        values = rng.lognormal(4, 1, 1000)
        boot = feed(BootstrapQuantilePredictor(seed=2), values).predict()
        point = float(np.quantile(values, 0.95))
        assert boot >= point * 0.95  # at or above, modulo resampling noise

    def test_lower_kind(self, rng):
        values = rng.lognormal(4, 1, 1000)
        upper = feed(BootstrapQuantilePredictor(seed=3), values).predict()
        lower = feed(
            BootstrapQuantilePredictor(seed=3, kind=BoundKind.LOWER), values
        ).predict()
        assert lower < upper

    def test_needs_thirty_points(self):
        predictor = BootstrapQuantilePredictor()
        for value in range(29):
            predictor.observe(float(value))
        predictor.refit()
        assert predictor.predict() is None

    def test_history_cap_bounds_cost(self, rng):
        predictor = BootstrapQuantilePredictor(max_history=100, seed=4)
        feed(predictor, rng.lognormal(4, 1, 5000))
        # Bound computed from the last 100 only: close to their quantile.
        recent = predictor.history.values[-100:]
        assert predictor.predict() <= max(recent)

    def test_validation(self):
        with pytest.raises(ValueError):
            BootstrapQuantilePredictor(n_resamples=5)
        with pytest.raises(ValueError):
            BootstrapQuantilePredictor(max_history=10)

    def test_coverage_in_replay(self, rng):
        trace = make_trace(rng.lognormal(4, 1.2, 1500), gap=120.0)
        result = replay_single(trace, BootstrapQuantilePredictor(seed=5))
        assert result.fraction_correct >= 0.93


class TestWeibullPredictor:
    def test_quantile_of_true_weibull(self, rng):
        from repro.stats.weibull import WeibullDistribution

        true = WeibullDistribution(shape=0.8, scale=600.0)
        values = true.sample(5000, rng)
        predictor = feed(WeibullPredictor(), values)
        assert predictor.predict() == pytest.approx(true.quantile(0.95), rel=0.1)

    def test_needs_ten_points(self):
        predictor = WeibullPredictor()
        for value in range(9):
            predictor.observe(float(value))
        predictor.refit()
        assert predictor.predict() is None

    def test_under_covers_heavier_tails(self, rng):
        # On log-normal data with sigma ~ 1.5, the fitted Weibull's .95
        # quantile under-covers: a model-mismatch baseline.
        trace = make_trace(rng.lognormal(4, 1.5, 2000), gap=60.0)
        result = replay_single(trace, WeibullPredictor())
        assert result.fraction_correct < 0.96

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            WeibullPredictor(shift=0.0)
