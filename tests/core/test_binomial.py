"""Tests for the binomial quantile-bound machinery (paper Eq. 1/Appendix)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.core import binomial

QUANTILES = st.floats(min_value=0.05, max_value=0.99)
CONFIDENCES = st.floats(min_value=0.5, max_value=0.999)
SIZES = st.integers(min_value=1, max_value=5000)


class TestWorkedExamples:
    """The specific numbers quoted in the paper."""

    def test_minimum_history_for_95_95_is_59(self):
        # Section 4.1: "the minimum history from which a statistically
        # meaningful inference can be drawn is 59".
        assert binomial.minimum_sample_size(0.95, 0.95) == 59

    def test_58_observations_are_not_enough(self):
        assert binomial.upper_bound_rank(58, 0.95, 0.95) is None

    def test_59_observations_use_the_maximum(self):
        assert binomial.upper_bound_rank(59, 0.95, 0.95) == 59

    def test_appendix_normal_approximation_example(self):
        # Appendix: 95%-confidence upper bound on the .9 quantile from a
        # sample of 1000 is the 916th order statistic.
        assert binomial.normal_approx_upper_rank(1000, 0.9, 0.95) == 916

    def test_rare_event_probability_narrative(self):
        # Section 4.1: two consecutive exceedances of the .95 quantile have
        # probability .0025 for i.i.d. data.  An exceedance is "zero of one
        # observation at or below X_q".
        p_exceed = binomial.binomial_cdf(0, 1, 0.95)
        assert p_exceed == pytest.approx(0.05)
        assert p_exceed**2 == pytest.approx(0.0025)


class TestBinomialCdf:
    def test_matches_direct_sum(self):
        n, q, k = 20, 0.7, 12
        direct = sum(
            math.comb(n, j) * q**j * (1 - q) ** (n - j) for j in range(k + 1)
        )
        assert binomial.binomial_cdf(k, n, q) == pytest.approx(direct)

    def test_boundaries(self):
        assert binomial.binomial_cdf(-1, 10, 0.5) == 0.0
        assert binomial.binomial_cdf(10, 10, 0.5) == 1.0
        assert binomial.binomial_cdf(15, 10, 0.5) == 1.0


class TestUpperBoundRank:
    def test_definition_smallest_valid_rank(self):
        # The returned rank k must satisfy CDF(k-1) >= C and be minimal.
        for n in (59, 100, 500, 2000):
            k = binomial.upper_bound_rank(n, 0.95, 0.95)
            assert binomial.binomial_cdf(k - 1, n, 0.95) >= 0.95
            assert binomial.binomial_cdf(k - 2, n, 0.95) < 0.95

    @given(n=SIZES, q=QUANTILES, c=CONFIDENCES)
    @settings(max_examples=200)
    def test_rank_in_range_or_none(self, n, q, c):
        k = binomial.upper_bound_rank(n, q, c)
        assert k is None or 1 <= k <= n

    @given(n=st.integers(min_value=30, max_value=2000), q=QUANTILES)
    @settings(max_examples=100)
    def test_monotone_in_confidence(self, n, q):
        ranks = [binomial.upper_bound_rank(n, q, c) for c in (0.6, 0.8, 0.95)]
        present = [r for r in ranks if r is not None]
        assert present == sorted(present)
        # Once a confidence level is unattainable, all higher ones are too.
        seen_none = False
        for r in ranks:
            if r is None:
                seen_none = True
            else:
                assert not seen_none

    @given(n=st.integers(min_value=100, max_value=2000), c=CONFIDENCES)
    @settings(max_examples=100)
    def test_monotone_in_quantile(self, n, c):
        ranks = [binomial.upper_bound_rank(n, q, c) for q in (0.5, 0.75, 0.9)]
        present = [r for r in ranks if r is not None]
        assert present == sorted(present)

    def test_rank_exceeds_naive_quantile_rank(self):
        # The confidence margin always pushes the rank above ceil(n*q).
        for n in (100, 500, 1000):
            k = binomial.upper_bound_rank(n, 0.9, 0.95)
            assert k > math.ceil(n * 0.9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            binomial.upper_bound_rank(100, 0.0, 0.95)
        with pytest.raises(ValueError):
            binomial.upper_bound_rank(100, 0.95, 1.0)
        assert binomial.upper_bound_rank(0, 0.95, 0.95) is None


class TestLowerBoundRank:
    def test_definition_largest_valid_rank(self):
        for n in (50, 200, 1000):
            k = binomial.lower_bound_rank(n, 0.25, 0.95)
            assert k is not None
            # P(x_(k) < X_q) = 1 - CDF(k-1) must reach the confidence.
            assert 1 - binomial.binomial_cdf(k - 1, n, 0.25) >= 0.95
            assert 1 - binomial.binomial_cdf(k, n, 0.25) < 0.95

    def test_minimum_sample_size_lower(self):
        n_min = binomial.minimum_sample_size_lower(0.25, 0.95)
        assert binomial.lower_bound_rank(n_min, 0.25, 0.95) is not None
        assert binomial.lower_bound_rank(n_min - 1, 0.25, 0.95) is None

    @given(n=SIZES, q=QUANTILES, c=CONFIDENCES)
    @settings(max_examples=200)
    def test_rank_in_range_or_none(self, n, q, c):
        k = binomial.lower_bound_rank(n, q, c)
        assert k is None or 1 <= k <= n

    @given(n=st.integers(min_value=100, max_value=2000))
    @settings(max_examples=50)
    def test_lower_below_upper(self, n):
        lower = binomial.lower_bound_rank(n, 0.5, 0.95)
        upper = binomial.upper_bound_rank(n, 0.5, 0.95)
        assert lower is not None and upper is not None
        assert lower < upper


class TestNormalApproximation:
    @given(q=st.floats(min_value=0.2, max_value=0.9))
    @settings(max_examples=50)
    def test_close_to_exact_for_large_n(self, q):
        n = 5000
        exact = binomial.upper_bound_rank(n, q, 0.95)
        approx = binomial.normal_approx_upper_rank(n, q, 0.95)
        assert abs(exact - approx) <= 3

    def test_lower_mirror(self):
        n = 2000
        upper = binomial.normal_approx_upper_rank(n, 0.5, 0.95)
        lower = binomial.normal_approx_lower_rank(n, 0.5, 0.95)
        # Symmetric around the median rank.
        assert abs((upper - n * 0.5) + (lower - n * 0.5)) <= 2

    def test_none_when_out_of_range(self):
        assert binomial.normal_approx_upper_rank(20, 0.95, 0.95) is None
        assert binomial.normal_approx_lower_rank(20, 0.05, 0.95) is None

    def test_switch_rule(self):
        assert not binomial.use_normal_approximation(100, 0.95)  # n(1-q)=5
        assert binomial.use_normal_approximation(200, 0.95)
        assert not binomial.use_normal_approximation(15, 0.5)


class TestCoverage:
    """The statistical guarantee itself, checked by Monte Carlo."""

    def test_upper_bound_covers_quantile_at_stated_rate(self, rng):
        n, q, c = 200, 0.9, 0.9
        k = binomial.upper_bound_rank(n, q, c)
        true_q = float(sps.norm.ppf(q))
        reps = 3000
        covered = 0
        for _ in range(reps):
            sample = np.sort(rng.standard_normal(n))
            covered += sample[k - 1] >= true_q
        rate = covered / reps
        # Should be >= c, within MC noise (3 sigma below is a real failure).
        assert rate >= c - 3 * math.sqrt(c * (1 - c) / reps)

    def test_lower_bound_covers_quantile_at_stated_rate(self, rng):
        n, q, c = 200, 0.25, 0.9
        k = binomial.lower_bound_rank(n, q, c)
        true_q = float(sps.norm.ppf(q))
        reps = 3000
        covered = 0
        for _ in range(reps):
            sample = np.sort(rng.standard_normal(n))
            covered += sample[k - 1] <= true_q
        rate = covered / reps
        assert rate >= c - 3 * math.sqrt(c * (1 - c) / reps)
