"""Property-based tests for ``HistoryWindow`` against a naive list model.

The window is the one data structure every predictor sits on, and its
eviction/compaction/lazy-merge machinery has exactly the kind of offset
arithmetic property testing exists for.  The model is the obvious thing:
a plain Python list with the same operations applied.  After every step,
the window must agree with the model on length, arrival order, and sorted
order — and ``arrival_view()`` must alias the internal buffer (zero-copy
is part of its contract, not an optimization detail).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryWindow

# Finite, order-preserving floats; NaN would break the sorted-view model
# (and is rejected upstream by the predictors).
VALUES = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), VALUES),
        st.tuples(st.just("extend"), st.lists(VALUES, max_size=20)),
        st.tuples(st.just("extend-array"), st.lists(VALUES, max_size=20)),
        st.tuples(st.just("trim"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("clear"), st.none()),
    ),
    max_size=40,
)


def apply_to_model(model, max_size, op, arg):
    if op == "append":
        model.append(float(arg))
    elif op in ("extend", "extend-array"):
        model.extend(float(v) for v in arg)
    elif op == "trim":
        if arg < len(model):
            del model[: len(model) - arg]
    elif op == "clear":
        model.clear()
    if max_size is not None and len(model) > max_size:
        del model[: len(model) - max_size]


def apply_to_window(window, op, arg):
    if op == "append":
        window.append(arg)
    elif op == "extend":
        window.extend(arg)
    elif op == "extend-array":
        window.extend(np.asarray(arg, dtype=float))
    elif op == "trim":
        window.trim_to_recent(arg)
    elif op == "clear":
        window.clear()


def assert_agrees(window, model):
    assert len(window) == len(model)
    assert bool(window) == bool(model)
    assert window.values == model
    view = window.arrival_view()
    assert view.tolist() == model
    if len(model) > 0:
        # Zero-copy contract: the view aliases the internal buffer.
        assert np.shares_memory(view, window._buf)
    assert window.sorted_values().tolist() == sorted(model)


class TestAgainstListModel:
    @given(ops=OPS, max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=150, deadline=None)
    def test_any_op_sequence_matches_naive_list(self, ops, max_size):
        """Interleaved appends/extends/trims/clears never diverge from a list.

        ``max_size`` up to 7 with op batches up to 20 forces eviction and
        in-place compaction constantly; checking after *every* op (not just
        at the end) catches lazy sorted-view staleness.
        """
        window = HistoryWindow(max_size=max_size)
        model = []
        for op, arg in ops:
            apply_to_window(window, op, arg)
            apply_to_model(model, max_size, op, arg)
            assert_agrees(window, model)

    @given(values=st.lists(VALUES, max_size=30), max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=80, deadline=None)
    def test_constructor_seed_equals_appends(self, values, max_size):
        seeded = HistoryWindow(values, max_size=max_size)
        appended = HistoryWindow(max_size=max_size)
        for v in values:
            appended.append(v)
        assert seeded.values == appended.values
        assert seeded.sorted_values().tolist() == appended.sorted_values().tolist()

    @given(values=st.lists(VALUES, min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_sorted_read_between_appends_stays_correct(self, values):
        """The lazy merge path (read, append more, read again) never drifts."""
        window = HistoryWindow()
        for i, v in enumerate(values):
            window.append(v)
            if i % 3 == 0:  # interleave reads to exercise incremental merges
                assert window.sorted_values().tolist() == sorted(values[: i + 1])
        assert window.sorted_values().tolist() == sorted(values)


def _check_ranks(window, model):
    """Every interesting rank agrees with ``sorted(model)[rank - 1]`` —
    bit-identically, which is the refit engine's exactness contract."""
    n = len(model)
    if n == 0:
        return
    reference = sorted(model)
    ranks = {1, n, (n + 1) // 2, max(1, -(-n * 95 // 100))}
    for rank in ranks:
        assert window.order_statistic(rank) == reference[rank - 1]


class TestOrderStatisticMaintenance:
    """The incremental refit engine's exactness tier: order statistics and
    rank subscriptions served from the maintained view are bit-identical
    to a naive re-sort, at every step of any mutation sequence."""

    @given(ops=OPS, max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=150, deadline=None)
    def test_order_statistics_match_naive_select_at_every_step(self, ops, max_size):
        """Selection through the query-time fold paths (scalar inserts,
        vectorized merges, staged evictions, post-trim resort) never
        diverges from ``sorted(history)[k]``."""
        window = HistoryWindow(max_size=max_size)
        model = []
        for op, arg in ops:
            apply_to_window(window, op, arg)
            apply_to_model(model, max_size, op, arg)
            _check_ranks(window, model)
        assert window.sorted_values().tolist() == sorted(model)

    @given(ops=OPS, max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=100, deadline=None)
    def test_rank_subscriptions_answer_from_the_shared_view(self, ops, max_size):
        """A subscribed ``ceil(0.95 n)`` rank (the point-quantile shape) and
        a size-capped rank (the BMBP shape, None below a minimum size)
        both track the naive answer through appends, evictions, and
        change-point-style trims."""
        window = HistoryWindow(max_size=max_size)
        window.subscribe_rank("q95", lambda n: max(1, -(-n * 95 // 100)))
        window.subscribe_rank("gated", lambda n: n if n >= 3 else None)
        model = []
        for op, arg in ops:
            apply_to_window(window, op, arg)
            apply_to_model(model, max_size, op, arg)
            n = len(model)
            reference = sorted(model)
            expected_q95 = None if n == 0 else reference[max(1, -(-n * 95 // 100)) - 1]
            assert window.rank_value("q95") == expected_q95
            expected_gated = None if n < 3 else reference[-1]
            assert window.rank_value("gated") == expected_gated
        assert set(window.subscriptions()) == {"q95", "gated"}

    @given(
        batches=st.lists(st.lists(VALUES, min_size=1, max_size=40), max_size=8),
        trims=st.lists(st.integers(0, 50), max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_presorted_hint_never_changes_the_result(self, batches, trims):
        """Extending with the shared-sort hint (``presorted=np.sort(batch)``,
        the replay engine's epoch pass) is observably identical to
        extending without it, including when trims invalidate the hint
        mid-sequence."""
        hinted = HistoryWindow()
        plain = HistoryWindow()
        model = []
        for i, batch in enumerate(batches):
            arr = np.asarray(batch, dtype=float)
            hinted.extend(arr, presorted=np.sort(arr))
            plain.extend(arr)
            model.extend(float(v) for v in batch)
            if i < len(trims):
                hinted.trim_to_recent(trims[i])
                plain.trim_to_recent(trims[i])
                if trims[i] < len(model):
                    del model[: len(model) - trims[i]]
            assert hinted.sorted_values().tolist() == sorted(model)
            assert plain.sorted_values().tolist() == sorted(model)
            _check_ranks(hinted, model)


class TestEvictionAtScale:
    def test_bounded_window_over_many_compactions(self):
        """1000 appends into max_size=16: dozens of in-place compactions,
        window always the most recent 16 in order."""
        window = HistoryWindow(max_size=16)
        expected = []
        for i in range(1000):
            value = float((i * 7919) % 1000)  # non-monotonic, no pattern
            window.append(value)
            expected.append(value)
            expected = expected[-16:]
            if i % 50 == 0:
                assert window.values == expected
                assert window.sorted_values().tolist() == sorted(expected)
        assert window.values == expected
        assert window.sorted_values().tolist() == sorted(expected)
        # The buffer never grew: bounded windows stay bounded in memory.
        assert window._buf.size == max(2 * 16, 64)

    def test_unbounded_trim_then_refill(self):
        window = HistoryWindow(range(500))
        window.trim_to_recent(10)
        assert window.values == [float(v) for v in range(490, 500)]
        window.extend(range(20))
        assert len(window) == 30
        assert window.sorted_values().tolist() == sorted(
            [float(v) for v in range(490, 500)] + [float(v) for v in range(20)]
        )
