"""Property-based tests for ``HistoryWindow`` against a naive list model.

The window is the one data structure every predictor sits on, and its
eviction/compaction/lazy-merge machinery has exactly the kind of offset
arithmetic property testing exists for.  The model is the obvious thing:
a plain Python list with the same operations applied.  After every step,
the window must agree with the model on length, arrival order, and sorted
order — and ``arrival_view()`` must alias the internal buffer (zero-copy
is part of its contract, not an optimization detail).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryWindow

# Finite, order-preserving floats; NaN would break the sorted-view model
# (and is rejected upstream by the predictors).
VALUES = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), VALUES),
        st.tuples(st.just("extend"), st.lists(VALUES, max_size=20)),
        st.tuples(st.just("extend-array"), st.lists(VALUES, max_size=20)),
        st.tuples(st.just("trim"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("clear"), st.none()),
    ),
    max_size=40,
)


def apply_to_model(model, max_size, op, arg):
    if op == "append":
        model.append(float(arg))
    elif op in ("extend", "extend-array"):
        model.extend(float(v) for v in arg)
    elif op == "trim":
        if arg < len(model):
            del model[: len(model) - arg]
    elif op == "clear":
        model.clear()
    if max_size is not None and len(model) > max_size:
        del model[: len(model) - max_size]


def apply_to_window(window, op, arg):
    if op == "append":
        window.append(arg)
    elif op == "extend":
        window.extend(arg)
    elif op == "extend-array":
        window.extend(np.asarray(arg, dtype=float))
    elif op == "trim":
        window.trim_to_recent(arg)
    elif op == "clear":
        window.clear()


def assert_agrees(window, model):
    assert len(window) == len(model)
    assert bool(window) == bool(model)
    assert window.values == model
    view = window.arrival_view()
    assert view.tolist() == model
    if len(model) > 0:
        # Zero-copy contract: the view aliases the internal buffer.
        assert np.shares_memory(view, window._buf)
    assert window.sorted_values().tolist() == sorted(model)


class TestAgainstListModel:
    @given(ops=OPS, max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=150, deadline=None)
    def test_any_op_sequence_matches_naive_list(self, ops, max_size):
        """Interleaved appends/extends/trims/clears never diverge from a list.

        ``max_size`` up to 7 with op batches up to 20 forces eviction and
        in-place compaction constantly; checking after *every* op (not just
        at the end) catches lazy sorted-view staleness.
        """
        window = HistoryWindow(max_size=max_size)
        model = []
        for op, arg in ops:
            apply_to_window(window, op, arg)
            apply_to_model(model, max_size, op, arg)
            assert_agrees(window, model)

    @given(values=st.lists(VALUES, max_size=30), max_size=st.one_of(st.none(), st.integers(1, 7)))
    @settings(max_examples=80, deadline=None)
    def test_constructor_seed_equals_appends(self, values, max_size):
        seeded = HistoryWindow(values, max_size=max_size)
        appended = HistoryWindow(max_size=max_size)
        for v in values:
            appended.append(v)
        assert seeded.values == appended.values
        assert seeded.sorted_values().tolist() == appended.sorted_values().tolist()

    @given(values=st.lists(VALUES, min_size=1, max_size=50))
    @settings(max_examples=80, deadline=None)
    def test_sorted_read_between_appends_stays_correct(self, values):
        """The lazy merge path (read, append more, read again) never drifts."""
        window = HistoryWindow()
        for i, v in enumerate(values):
            window.append(v)
            if i % 3 == 0:  # interleave reads to exercise incremental merges
                assert window.sorted_values().tolist() == sorted(values[: i + 1])
        assert window.sorted_values().tolist() == sorted(values)


class TestEvictionAtScale:
    def test_bounded_window_over_many_compactions(self):
        """1000 appends into max_size=16: dozens of in-place compactions,
        window always the most recent 16 in order."""
        window = HistoryWindow(max_size=16)
        expected = []
        for i in range(1000):
            value = float((i * 7919) % 1000)  # non-monotonic, no pattern
            window.append(value)
            expected.append(value)
            expected = expected[-16:]
            if i % 50 == 0:
                assert window.values == expected
                assert window.sorted_values().tolist() == sorted(expected)
        assert window.values == expected
        assert window.sorted_values().tolist() == sorted(expected)
        # The buffer never grew: bounded windows stay bounded in memory.
        assert window._buf.size == max(2 * 16, 64)

    def test_unbounded_trim_then_refill(self):
        window = HistoryWindow(range(500))
        window.trim_to_recent(10)
        assert window.values == [float(v) for v in range(490, 500)]
        window.extend(range(20))
        assert len(window) == 30
        assert window.sorted_values().tolist() == sorted(
            [float(v) for v in range(490, 500)] + [float(v) for v in range(20)]
        )
