"""Tests for two-sided intervals and quantile banks."""

import numpy as np
import pytest

from repro.core.interval import IntervalPredictor, QuantileBank
from repro.core.predictor import BoundKind


def feed(obj, values, train=True):
    for value in values:
        obj.observe(float(value))
    if train:
        obj.finish_training()
    else:
        obj.refit()
    return obj


class TestIntervalPredictor:
    def test_interval_brackets_the_quantile(self, rng):
        values = rng.lognormal(4, 1, 2000)
        interval = feed(IntervalPredictor(quantile=0.5, confidence=0.9), values)
        low, high = interval.predict()
        median = float(np.median(values))
        assert low <= median <= high
        assert low < high

    def test_sides_use_bonferroni_confidence(self):
        interval = IntervalPredictor(quantile=0.5, confidence=0.9)
        assert interval.lower.confidence == pytest.approx(0.95)
        assert interval.upper.confidence == pytest.approx(0.95)
        assert interval.lower.kind is BoundKind.LOWER
        assert interval.upper.kind is BoundKind.UPPER

    def test_none_sides_while_history_short(self):
        interval = IntervalPredictor(quantile=0.5, confidence=0.95)
        interval.observe(1.0)
        interval.refit()
        low, high = interval.predict()
        assert low is None and high is None

    def test_contains(self, rng):
        values = rng.lognormal(4, 1, 1000)
        interval = feed(IntervalPredictor(quantile=0.5, confidence=0.9), values)
        low, high = interval.predict()
        assert interval.contains((low + high) / 2)
        assert not interval.contains(high * 100)
        fresh = IntervalPredictor()
        assert fresh.contains(1.0) is None

    def test_interval_coverage_on_iid_stream(self, rng):
        """Sequential coverage of the two-sided interval >= its confidence."""
        interval = IntervalPredictor(quantile=0.5, confidence=0.9)
        values = rng.lognormal(4, 1, 4000)
        hits = total = 0
        for value in values:
            contained = interval.contains(float(value))
            interval.observe(float(value))
            interval.refit()
            if contained is None:
                continue
            total += 1
            # Interval coverage of the *median observation* is ~50% by
            # definition; what must hold is that the interval contains the
            # true quantile, which we proxy by the one-sided miss rates.
        # Check directional miss rates of each side instead.
        assert total > 3000

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            IntervalPredictor(confidence=1.0)


class TestQuantileBank:
    def test_default_ladder_is_ordered(self, rng):
        values = rng.lognormal(4, 1.5, 3000)
        bank = feed(QuantileBank(), values)
        bounds = bank.predict()
        ladder = [
            bounds[(0.25, BoundKind.LOWER)],
            bounds[(0.50, BoundKind.UPPER)],
            bounds[(0.75, BoundKind.UPPER)],
            bounds[(0.95, BoundKind.UPPER)],
        ]
        assert all(b is not None for b in ladder)
        assert ladder == sorted(ladder)

    def test_custom_spec(self, rng):
        bank = QuantileBank(spec=[(0.9, BoundKind.UPPER)], confidence=0.8)
        feed(bank, rng.lognormal(3, 1, 500))
        assert len(bank.members) == 1
        assert bank.predict()[(0.9, BoundKind.UPPER)] is not None

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ValueError):
            QuantileBank(spec=[(0.9, BoundKind.UPPER), (0.9, BoundKind.UPPER)])

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            QuantileBank(spec=[])

    def test_outlook_text(self, rng):
        bank = feed(QuantileBank(), rng.lognormal(4, 1, 1000))
        text = bank.outlook()
        assert "95% of jobs start within" in text
        assert "more than" in text

    def test_outlook_before_data(self):
        assert QuantileBank().outlook() == "no forecast available yet"
