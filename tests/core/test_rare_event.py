"""Tests for the Monte-Carlo rare-event threshold calibration."""

import numpy as np
import pytest

from repro.core.rare_event import (
    RareEventTable,
    _gaussian_ar1,
    _run_lengths,
    default_rare_event_table,
    generate_rare_event_table,
    threshold_for_rho,
)


class TestRunLengths:
    def test_basic_runs(self):
        exceed = np.array([0, 1, 1, 0, 1, 0, 1, 1, 1], dtype=bool)
        assert sorted(_run_lengths(exceed)) == [1, 2, 3]

    def test_all_false(self):
        assert _run_lengths(np.zeros(10, dtype=bool)).size == 0

    def test_all_true(self):
        assert list(_run_lengths(np.ones(7, dtype=bool))) == [7]

    def test_empty(self):
        assert _run_lengths(np.array([], dtype=bool)).size == 0

    def test_boundary_runs(self):
        exceed = np.array([1, 0, 0, 1], dtype=bool)
        assert sorted(_run_lengths(exceed)) == [1, 1]


class TestGaussianAr1:
    def test_marginal_variance_is_unit(self):
        rng = np.random.default_rng(0)
        series = _gaussian_ar1(200_000, 0.7, rng)
        assert np.std(series) == pytest.approx(1.0, abs=0.02)

    def test_lag1_autocorrelation_matches(self):
        rng = np.random.default_rng(1)
        for rho in (0.0, 0.4, 0.8):
            series = _gaussian_ar1(200_000, rho, rng)
            centered = series - series.mean()
            measured = np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered)
            assert measured == pytest.approx(rho, abs=0.02)


class TestThresholds:
    def test_iid_threshold_is_three(self):
        # The paper's narrative: three consecutive misses on i.i.d. data.
        assert threshold_for_rho(0.0, series_length=100_000) == 3

    def test_threshold_monotone_in_autocorrelation(self):
        rng = np.random.default_rng(2)
        thresholds = [
            threshold_for_rho(rho, series_length=150_000, rng=rng)
            for rho in (0.0, 0.5, 0.9)
        ]
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] > thresholds[0]

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            threshold_for_rho(1.0)
        with pytest.raises(ValueError):
            threshold_for_rho(-0.1)


class TestTable:
    def test_default_table_is_cached_and_deterministic(self):
        a = default_rare_event_table()
        b = default_rare_event_table()
        assert a is b
        regenerated = generate_rare_event_table()
        assert regenerated.thresholds == a.thresholds

    def test_lookup_floors_to_grid(self):
        table = RareEventTable(
            quantile=0.95, rare_fraction=0.05, thresholds={0.0: 3, 0.5: 4, 0.9: 8}
        )
        assert table.threshold_for(0.0) == 3
        assert table.threshold_for(0.49) == 3
        assert table.threshold_for(0.5) == 4
        assert table.threshold_for(0.7) == 4
        assert table.threshold_for(0.95) == 8  # clamps above grid
        assert table.threshold_for(-0.3) == 3  # clamps below grid

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            RareEventTable(quantile=0.95, rare_fraction=0.05, thresholds={})

    def test_generated_table_covers_grid(self):
        table = generate_rare_event_table(
            rho_grid=(0.0, 0.4, 0.8), series_length=50_000
        )
        assert set(table.thresholds) == {0.0, 0.4, 0.8}
        assert all(t >= 3 for t in table.thresholds.values())
