"""Tests for the BMBP predictor."""

import numpy as np
import pytest

from repro.core import binomial
from repro.core.bmbp import BMBPPredictor
from repro.core.predictor import BoundKind
from repro.core.quantile import upper_confidence_bound


class TestBoundComputation:
    def test_matches_direct_quantile_bound(self, lognormal_sample):
        predictor = BMBPPredictor(method="exact")
        for value in lognormal_sample:
            predictor.observe(float(value))
        predictor.refit()
        direct = upper_confidence_bound(lognormal_sample, 0.95, 0.95, method="exact")
        assert predictor.predict() == direct.value

    def test_none_below_minimum_history(self):
        predictor = BMBPPredictor(method="exact")
        for value in range(58):
            predictor.observe(float(value))
        predictor.refit()
        assert predictor.predict() is None
        predictor.observe(58.0)
        predictor.refit()
        assert predictor.predict() is not None

    def test_lower_bound_kind(self, lognormal_sample):
        predictor = BMBPPredictor(quantile=0.25, kind=BoundKind.LOWER)
        for value in lognormal_sample:
            predictor.observe(float(value))
        predictor.refit()
        assert predictor.predict() <= float(np.quantile(lognormal_sample, 0.25))

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            BMBPPredictor(method="bogus")

    def test_invalid_quantile_and_confidence(self):
        with pytest.raises(ValueError):
            BMBPPredictor(quantile=1.0)
        with pytest.raises(ValueError):
            BMBPPredictor(confidence=0.0)


class TestProtocol:
    def test_predict_is_cached_until_refit(self):
        predictor = BMBPPredictor()
        for value in range(100):
            predictor.observe(float(value))
        predictor.refit()
        before = predictor.predict()
        predictor.observe(1e9)  # not yet reflected
        assert predictor.predict() == before
        predictor.refit()
        assert predictor.predict() >= before

    def test_refit_if_stale_skips_when_unchanged(self):
        predictor = BMBPPredictor()
        for value in range(100):
            predictor.observe(float(value))
        predictor.refit()
        first = predictor.predict()
        predictor.refit_if_stale()  # no new observations: no-op
        assert predictor.predict() == first

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            BMBPPredictor().observe(-1.0)

    def test_describe(self):
        predictor = BMBPPredictor()
        for value in range(100):
            predictor.observe(float(value))
        predictor.refit()
        description = predictor.describe()
        assert description.quantile == 0.95
        assert description.kind is BoundKind.UPPER
        assert description.n_history == 100
        assert description.method == "bmbp"

    def test_describe_none_before_data(self):
        assert BMBPPredictor().describe() is None


class TestTrainingAndTrimming:
    def test_finish_training_sets_threshold_from_autocorrelation(self, rng):
        predictor = BMBPPredictor()
        # Strongly autocorrelated history -> larger threshold than i.i.d.
        level = 0.0
        for _ in range(2000):
            level = 0.93 * level + rng.normal()
            predictor.observe(float(np.exp(level)))
        predictor.finish_training()
        assert predictor.trained
        assert predictor.miss_threshold >= 4

    def test_iid_training_keeps_small_threshold(self, rng):
        predictor = BMBPPredictor()
        for value in rng.lognormal(3, 1, 500):
            predictor.observe(float(value))
        predictor.finish_training()
        assert predictor.miss_threshold == 3

    def test_consecutive_misses_trigger_trim(self):
        predictor = BMBPPredictor()
        for value in range(200):
            predictor.observe(float(value % 50))
        predictor.finish_training()
        assert len(predictor.history) == 200
        bound = predictor.predict()
        # Feed the threshold's worth of scored misses.
        for _ in range(predictor.miss_threshold):
            predictor.observe(bound + 1000.0, predicted=bound)
        assert len(predictor.history) == predictor.trim_length
        assert predictor.detector.change_points_seen == 1

    def test_unscored_observations_never_trigger_trim(self):
        predictor = BMBPPredictor()
        for value in range(200):
            predictor.observe(float(value % 50))
        predictor.finish_training()
        for _ in range(10):
            predictor.observe(1e9)  # no predicted= -> not a scored miss
        assert len(predictor.history) == 210

    def test_trim_disabled_variant(self):
        predictor = BMBPPredictor(trim=False)
        for value in range(200):
            predictor.observe(float(value % 50))
        predictor.finish_training()
        bound = predictor.predict()
        for _ in range(10):
            predictor.observe(bound + 1000.0, predicted=bound)
        assert len(predictor.history) == 210
        assert predictor.miss_threshold is None

    def test_trim_length_is_binomial_minimum(self):
        assert BMBPPredictor().trim_length == binomial.minimum_sample_size(0.95, 0.95)
        lower = BMBPPredictor(quantile=0.25, kind=BoundKind.LOWER)
        assert lower.trim_length == binomial.minimum_sample_size_lower(0.25, 0.95)

    def test_lower_bound_miss_direction(self):
        predictor = BMBPPredictor(quantile=0.25, kind=BoundKind.LOWER)
        for value in range(200):
            predictor.observe(100.0 + value % 10)
        predictor.finish_training()
        bound = predictor.predict()
        # For a lower bound, a miss is an observation *below* the bound.
        for _ in range(predictor.miss_threshold):
            predictor.observe(max(bound - 50.0, 0.0), predicted=bound)
        assert predictor.detector.change_points_seen == 1


class TestStatisticalBehavior:
    def test_coverage_on_iid_stream(self, rng):
        """Sequential one-step-ahead coverage on i.i.d. data reaches ~0.95."""
        predictor = BMBPPredictor()
        values = rng.lognormal(4, 1.5, 6000)
        hits = total = 0
        for value in values:
            bound = predictor.predict()
            if bound is not None:
                total += 1
                hits += value <= bound
            predictor.observe(float(value), predicted=bound)
            predictor.refit()
        assert total > 5000
        assert hits / total >= 0.945

    def test_bound_tracks_level_shift(self, rng):
        predictor = BMBPPredictor()
        for value in rng.lognormal(3, 0.5, 500):
            predictor.observe(float(value))
        predictor.finish_training()
        low_bound = predictor.predict()
        # Shift the level up 20x; feed scored observations so trims fire.
        for value in rng.lognormal(3 + np.log(20), 0.5, 500):
            predictor.observe(float(value), predicted=predictor.predict())
            predictor.refit()
        assert predictor.predict() > low_bound * 5


class TestSlidingWindow:
    def test_window_caps_history(self, rng):
        predictor = BMBPPredictor(trim=False, max_history=200)
        for wait in rng.lognormal(3, 1, 1000):
            predictor.observe(float(wait))
        assert len(predictor.history) == 200

    def test_window_tracks_level_shift_without_detector(self, rng):
        predictor = BMBPPredictor(trim=False, max_history=300)
        for wait in rng.lognormal(2, 0.5, 600):
            predictor.observe(float(wait))
        predictor.refit()
        low = predictor.predict()
        for wait in rng.lognormal(6, 0.5, 600):
            predictor.observe(float(wait))
        predictor.refit()
        assert predictor.predict() > low * 10

    def test_unbounded_by_default(self, rng):
        predictor = BMBPPredictor()
        for wait in rng.lognormal(3, 1, 500):
            predictor.observe(float(wait))
        assert len(predictor.history) == 500
