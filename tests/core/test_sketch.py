"""Unit tests for the streaming quantile sketches (``core/sketch.py``).

The sketches are approximate by contract (conformance measures their
operational error — see ``verify/conformance.py``), so these tests pin the
*deterministic* guarantees instead: exactness at tiny counts, batch/scalar
state equivalence (the batched replay engine relies on it), bounded
memory, retargeting, and the predictor wiring (``refit_mode`` selection,
capability gating, rebuild-on-trim).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import MeanWaitPredictor, PointQuantilePredictor
from repro.core.bmbp import BMBPPredictor
from repro.core.sketch import P2Quantile, TDigest, make_sketch


class TestP2Quantile:
    def test_exact_below_six_observations(self):
        sketch = P2Quantile(0.5)
        values = [5.0, 1.0, 3.0]
        for v in values:
            sketch.update(v)
        # ceil(0.5 * 3) = 2nd smallest
        assert sketch.quantile() == 3.0
        assert len(sketch) == 3

    def test_empty_returns_none(self):
        assert P2Quantile(0.9).quantile() is None

    def test_converges_on_uniform_stream(self):
        rng = np.random.default_rng(1)
        sketch = P2Quantile(0.95)
        sketch.update_batch(rng.uniform(0.0, 1.0, 50_000))
        assert sketch.quantile() == pytest.approx(0.95, abs=0.01)

    def test_median_of_standard_normal(self):
        rng = np.random.default_rng(2)
        sketch = P2Quantile(0.5)
        sketch.update_batch(rng.standard_normal(50_000))
        assert sketch.quantile() == pytest.approx(0.0, abs=0.02)

    def test_batch_equals_sequential(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(4.0, 1.0, 2_000)
        batched = P2Quantile(0.95)
        batched.update_batch(values)
        sequential = P2Quantile(0.95)
        for v in values:
            sequential.update(v)
        assert batched.quantile() == sequential.quantile()
        assert batched._q == sequential._q
        assert batched._n == sequential._n

    def test_retargeting_drifts_to_new_quantile(self):
        rng = np.random.default_rng(4)
        sketch = P2Quantile(0.5)
        sketch.update_batch(rng.uniform(0.0, 1.0, 10_000))
        sketch.set_target(0.9)
        sketch.update_batch(rng.uniform(0.0, 1.0, 50_000))
        assert sketch.quantile() == pytest.approx(0.9, abs=0.02)

    def test_query_off_target_interpolates(self):
        rng = np.random.default_rng(5)
        sketch = P2Quantile(0.5)
        sketch.update_batch(rng.uniform(0.0, 1.0, 20_000))
        # A one-off query at a different p answers from the current markers
        # (a coarse piecewise guess) and retargets for later updates.
        est = sketch.quantile(0.75)
        assert 0.5 < est < 1.0
        assert sketch.p == 0.75

    def test_reset(self):
        sketch = P2Quantile(0.9)
        sketch.update_batch(np.arange(100.0))
        sketch.reset()
        assert len(sketch) == 0
        assert sketch.quantile() is None

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(0.9).set_target(1.0)


class TestTDigest:
    def test_empty_returns_none(self):
        assert TDigest().quantile(0.5) is None

    def test_small_counts_are_tight(self):
        # Below the merge buffer nothing has been compressed away; the
        # digest must land within the sample's neighboring order stats.
        values = np.array([1.0, 2.0, 3.0, 4.0, 100.0])
        digest = TDigest()
        digest.update_batch(values)
        assert digest.quantile(0.5) == pytest.approx(3.0, abs=1.0)
        assert 4.0 <= digest.quantile(0.99) <= 100.0

    def test_converges_on_uniform_stream(self):
        rng = np.random.default_rng(6)
        digest = TDigest()
        digest.update_batch(rng.uniform(0.0, 1.0, 100_000))
        for q in (0.05, 0.5, 0.95, 0.99):
            assert digest.quantile(q) == pytest.approx(q, abs=0.01)

    def test_tail_quantiles_on_lognormal(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(4.0, 1.0, 100_000)
        digest = TDigest()
        digest.update_batch(values)
        exact = float(np.quantile(values, 0.95))
        assert digest.quantile(0.95) == pytest.approx(exact, rel=0.05)

    def test_batch_equals_sequential_bit_for_bit(self):
        # The replay engine's contract: update_batch leaves exactly the
        # state a per-item loop would, including identical merge points.
        rng = np.random.default_rng(8)
        values = rng.lognormal(4.0, 1.0, 3_000)
        batched = TDigest()
        batched.update_batch(values)
        sequential = TDigest()
        for v in values:
            sequential.update(v)
        assert np.array_equal(batched._means, sequential._means)
        assert np.array_equal(batched._weights, sequential._weights)
        assert batched._buf == sequential._buf
        assert batched.quantile(0.95) == sequential.quantile(0.95)

    def test_memory_stays_bounded(self):
        rng = np.random.default_rng(9)
        digest = TDigest()
        digest.update_batch(rng.standard_normal(200_000))
        digest.quantile(0.5)  # force a final compress
        # O(delta) centroids regardless of stream length.
        assert digest._means.size < 3 * digest.delta

    def test_extremes_are_clamped_to_observed_range(self):
        rng = np.random.default_rng(10)
        values = rng.uniform(10.0, 20.0, 10_000)
        digest = TDigest()
        digest.update_batch(values)
        assert digest.quantile(0.001) >= 10.0
        assert digest.quantile(0.999) <= 20.0

    def test_reset(self):
        digest = TDigest()
        digest.update_batch(np.arange(1000.0))
        digest.reset()
        assert len(digest) == 0
        assert digest.quantile(0.5) is None

    def test_rejects_bad_probability(self):
        digest = TDigest()
        digest.update(1.0)
        with pytest.raises(ValueError):
            digest.quantile(0.0)
        with pytest.raises(ValueError):
            digest.quantile(1.0)
        with pytest.raises(ValueError):
            TDigest(delta=5)


class TestMakeSketch:
    def test_kinds(self):
        assert isinstance(make_sketch("p2", 0.95), P2Quantile)
        assert isinstance(make_sketch("tdigest", 0.95), TDigest)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="sketch"):
            make_sketch("histogram", 0.95)


class TestPredictorWiring:
    def test_sketch_modes_rename_the_method(self):
        assert PointQuantilePredictor(refit_mode="p2").name == "p2-quantile"
        assert PointQuantilePredictor(refit_mode="tdigest").name == "tdigest-quantile"
        assert PointQuantilePredictor().name == "point-quantile"

    def test_non_capable_predictor_rejects_sketch_modes(self):
        with pytest.raises(ValueError, match="sketch"):
            MeanWaitPredictor(refit_mode="p2")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="refit_mode"):
            PointQuantilePredictor(refit_mode="lazy")

    @pytest.mark.parametrize("mode", ["p2", "tdigest"])
    def test_sketch_backed_point_quantile_tracks_exact(self, mode):
        rng = np.random.default_rng(11)
        waits = rng.lognormal(4.0, 1.0, 2_000)
        sketched = PointQuantilePredictor(0.95, 0.95, refit_mode=mode)
        sketched.preload_history(waits)
        sketched.refit()
        rank = max(1, math.ceil(waits.size * 0.95))
        exact = float(np.sort(waits)[rank - 1])
        assert sketched.predict() == pytest.approx(exact, rel=0.25)

    @pytest.mark.parametrize("mode", ["p2", "tdigest"])
    def test_bmbp_sketch_backend_quotes_above_the_point_estimate(self, mode):
        # BMBP's rank carries the binomial confidence margin, so even the
        # sketch-served bound should typically sit above the plain
        # quantile estimate on clean data.
        rng = np.random.default_rng(12)
        waits = rng.lognormal(4.0, 1.0, 500)
        bound = BMBPPredictor(0.95, 0.95, refit_mode=mode)
        bound.preload_history(waits)
        bound.refit()
        point = PointQuantilePredictor(0.95, 0.95, refit_mode=mode)
        point.preload_history(waits)
        point.refit()
        assert bound.predict() is not None
        assert bound.predict() >= point.predict() * 0.95

    def test_sketch_rebuilds_after_change_point_trim(self):
        predictor = PointQuantilePredictor(
            0.95, 0.95, trim=True, trim_length=10, refit_mode="tdigest"
        )
        rng = np.random.default_rng(13)
        for w in rng.lognormal(2.0, 0.3, 100):
            predictor.observe(float(w))
        predictor.refit()
        # Three consecutive misses against an absurdly low quote: fires.
        for w in (500.0, 600.0, 700.0):
            predictor.observe(w, predicted=1.0)
        assert len(predictor.history) == 10
        # The sketch was rebuilt from the retained window: its answer must
        # reflect only the trimmed history (which ends in the huge waits).
        assert predictor.predict() > 100.0
