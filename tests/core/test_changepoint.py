"""Tests for the consecutive-miss change-point detector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.changepoint import ConsecutiveMissDetector


class TestFiring:
    def test_fires_exactly_at_threshold(self):
        detector = ConsecutiveMissDetector(3)
        assert not detector.record(True)
        assert not detector.record(True)
        assert detector.record(True)

    def test_hit_resets_run(self):
        detector = ConsecutiveMissDetector(3)
        detector.record(True)
        detector.record(True)
        detector.record(False)
        assert detector.current_run == 0
        assert not detector.record(True)
        assert not detector.record(True)
        assert detector.record(True)

    def test_run_resets_after_firing(self):
        detector = ConsecutiveMissDetector(2)
        detector.record(True)
        assert detector.record(True)
        assert detector.current_run == 0
        assert detector.change_points_seen == 1

    def test_threshold_one_fires_every_miss(self):
        detector = ConsecutiveMissDetector(1)
        assert detector.record(True)
        assert not detector.record(False)
        assert detector.record(True)
        assert detector.change_points_seen == 2

    @given(
        misses=st.lists(st.booleans(), max_size=200),
        threshold=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=100)
    def test_fire_count_matches_reference(self, misses, threshold):
        """Detector output equals a straightforward reference simulation."""
        detector = ConsecutiveMissDetector(threshold)
        fired = sum(detector.record(miss) for miss in misses)
        run = expected = 0
        for miss in misses:
            run = run + 1 if miss else 0
            if run >= threshold:
                expected += 1
                run = 0
        assert fired == expected
        assert detector.change_points_seen == expected


class TestConfiguration:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConsecutiveMissDetector(0)

    def test_retune(self):
        detector = ConsecutiveMissDetector(5)
        detector.record(True)
        detector.retune(2)
        assert detector.threshold == 2
        assert detector.record(True)  # run was 1, now reaches 2

    def test_retune_invalid(self):
        with pytest.raises(ValueError):
            ConsecutiveMissDetector(3).retune(0)

    def test_reset(self):
        detector = ConsecutiveMissDetector(3)
        detector.record(True)
        detector.record(True)
        detector.reset()
        assert detector.current_run == 0
