"""Property-based tests of the core statistical guarantees.

BMBP's selling point is distribution-freeness: the bound construction must
deliver its stated coverage on *any* i.i.d. wait distribution.  These tests
draw distribution families and parameters with hypothesis and check the
guarantee end to end through the predictor protocol, plus structural
properties (monotonicity, determinism) that must hold for every input.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bmbp import BMBPPredictor
from repro.core.quantile import upper_confidence_bound
from repro.simulator.replay import replay_single
from repro.workloads.trace import Trace

from tests.conftest import make_trace


def sample_family(family: str, params: tuple, rng, n: int) -> np.ndarray:
    """Draw n waits from a named heavy-or-light-tailed family."""
    a, b = params
    if family == "lognormal":
        return rng.lognormal(mean=2.0 + 4.0 * a, sigma=0.3 + 2.5 * b, size=n)
    if family == "weibull":
        shape = 0.4 + 2.0 * a
        scale = 10.0 ** (1.0 + 3.0 * b)
        return scale * rng.weibull(shape, size=n)
    if family == "pareto":
        alpha = 1.1 + 2.0 * a
        scale = 10.0 ** (1.0 + 2.0 * b)
        return scale * (rng.pareto(alpha, size=n) + 1.0)
    if family == "uniform":
        hi = 10.0 ** (1.0 + 4.0 * a)
        return rng.uniform(0.0, hi, size=n)
    if family == "bimodal":
        low = rng.lognormal(1.0, 0.5, size=n)
        high = rng.lognormal(6.0 + 2.0 * a, 0.5 + b, size=n)
        pick = rng.random(n) < 0.5
        return np.where(pick, low, high)
    raise AssertionError(family)


FAMILIES = st.sampled_from(["lognormal", "weibull", "pareto", "uniform", "bimodal"])
PARAMS = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)


class TestDistributionFreeCoverage:
    @given(family=FAMILIES, params=PARAMS, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sequential_coverage_on_any_iid_family(self, family, params, seed):
        """One-step-ahead coverage >= ~0.95 regardless of the distribution."""
        rng = np.random.default_rng(seed)
        waits = sample_family(family, params, rng, 2500)
        predictor = BMBPPredictor()
        hits = total = 0
        for wait in waits:
            bound = predictor.predict()
            if bound is not None:
                total += 1
                hits += wait <= bound
            predictor.observe(float(wait), predicted=bound)
            predictor.refit()
        assert total > 2000
        # 3-sigma slack below 0.95 for a ~2400-prediction sample.
        assert hits / total >= 0.95 - 3 * np.sqrt(0.95 * 0.05 / total)

    @given(family=FAMILIES, params=PARAMS, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_static_bound_exceeds_true_quantile_usually(self, family, params, seed):
        """The one-shot bound is above the empirical quantile of fresh data
        at roughly the stated confidence."""
        rng = np.random.default_rng(seed)
        sample = sample_family(family, params, rng, 400)
        bound = upper_confidence_bound(sample, 0.9, 0.95)
        fresh = sample_family(family, params, rng, 4000)
        exceed_fraction = float(np.mean(fresh > bound.value))
        # The bound covers the .9 quantile, so at most ~10% + noise exceed.
        assert exceed_fraction <= 0.10 + 0.03


class TestStructuralProperties:
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=100,
            max_size=400,
        )
    )
    @settings(max_examples=50)
    def test_bound_monotone_in_quantile_and_confidence(self, values):
        b_90 = upper_confidence_bound(values, 0.90, 0.95)
        b_95 = upper_confidence_bound(values, 0.95, 0.95)
        if b_90 is not None and b_95 is not None:
            assert b_90.value <= b_95.value
        c_80 = upper_confidence_bound(values, 0.90, 0.80)
        if c_80 is not None and b_90 is not None:
            assert c_80.value <= b_90.value

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_replay_is_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        waits = rng.lognormal(4, 1, 400)
        trace = make_trace(waits)
        a = replay_single(trace, BMBPPredictor())
        b = replay_single(trace, BMBPPredictor())
        assert a.fraction_correct == b.fraction_correct
        assert a.ratios == b.ratios

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=60,
            max_size=200,
        ),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_bound_is_scale_equivariant(self, values, scale):
        """Scaling every wait by c scales the (order-statistic) bound by c."""
        base = upper_confidence_bound(values, 0.9, 0.9)
        scaled = upper_confidence_bound([v * scale for v in values], 0.9, 0.9)
        if base is None:
            assert scaled is None
        else:
            assert scaled.value == pytest.approx(base.value * scale, rel=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=60,
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_bound_is_permutation_invariant(self, values):
        forward = upper_confidence_bound(values, 0.95, 0.95)
        backward = upper_confidence_bound(list(reversed(values)), 0.95, 0.95)
        assert forward == backward
