"""Tests for sample-level quantile confidence bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import binomial
from repro.core.quantile import (
    lower_confidence_bound,
    two_sided_confidence_interval,
    upper_confidence_bound,
)

SAMPLES = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=60,
    max_size=400,
)


class TestUpperBound:
    def test_value_is_the_documented_order_statistic(self, lognormal_sample):
        bound = upper_confidence_bound(lognormal_sample, 0.95, 0.95, method="exact")
        sample = np.sort(lognormal_sample)
        rank = binomial.upper_bound_rank(sample.size, 0.95, 0.95)
        assert bound.value == sample[rank - 1]
        assert bound.rank == rank
        assert bound.side == "upper"
        assert bound.method == "exact"

    def test_none_for_insufficient_sample(self):
        assert upper_confidence_bound([1.0] * 58, 0.95, 0.95, method="exact") is None
        assert upper_confidence_bound([], 0.95, 0.95) is None

    def test_auto_switches_to_normal_for_large_samples(self, lognormal_sample):
        bound = upper_confidence_bound(lognormal_sample, 0.95, 0.95, method="auto")
        assert bound.method == "normal"  # n(1-q) = 100 >= 10

    def test_auto_stays_exact_for_small_samples(self):
        bound = upper_confidence_bound(list(range(100)), 0.95, 0.95, method="auto")
        assert bound.method == "exact"  # n(1-q) = 5 < 10

    def test_assume_sorted_consistency(self, lognormal_sample):
        sorted_sample = np.sort(lognormal_sample)
        a = upper_confidence_bound(lognormal_sample, 0.9, 0.9)
        b = upper_confidence_bound(sorted_sample, 0.9, 0.9, assume_sorted=True)
        assert a == b

    def test_rejects_bad_method_and_shape(self, lognormal_sample):
        with pytest.raises(ValueError):
            upper_confidence_bound(lognormal_sample, 0.9, 0.9, method="magic")
        with pytest.raises(ValueError):
            upper_confidence_bound(np.ones((5, 5)), 0.9, 0.9)

    @given(values=SAMPLES)
    @settings(max_examples=50)
    def test_bound_is_above_empirical_quantile(self, values):
        bound = upper_confidence_bound(values, 0.9, 0.95)
        if bound is None:
            return
        assert bound.value >= float(np.quantile(values, 0.9, method="lower"))


class TestLowerBound:
    def test_below_upper(self, lognormal_sample):
        lower = lower_confidence_bound(lognormal_sample, 0.5, 0.95)
        upper = upper_confidence_bound(lognormal_sample, 0.5, 0.95)
        assert lower.value <= upper.value

    def test_lower_bound_of_low_quantile(self, lognormal_sample):
        bound = lower_confidence_bound(lognormal_sample, 0.25, 0.95)
        assert bound.side == "lower"
        # The bound sits below the empirical .25 quantile.
        assert bound.value <= float(np.quantile(lognormal_sample, 0.25))

    def test_none_for_insufficient_sample(self):
        n_min = binomial.minimum_sample_size_lower(0.25, 0.95)
        assert lower_confidence_bound([1.0] * (n_min - 1), 0.25, 0.95, method="exact") is None


class TestTwoSided:
    def test_interval_brackets_quantile_estimate(self, lognormal_sample):
        interval = two_sided_confidence_interval(lognormal_sample, 0.5, 0.9)
        assert interval is not None
        lower, upper = interval
        median = float(np.median(lognormal_sample))
        assert lower.value <= median <= upper.value
        # Bonferroni split: each side at (1+0.9)/2.
        assert lower.confidence == pytest.approx(0.95)
        assert upper.confidence == pytest.approx(0.95)

    def test_none_when_either_side_unattainable(self):
        assert two_sided_confidence_interval([1.0] * 30, 0.95, 0.95) is None
