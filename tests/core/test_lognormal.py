"""Tests for the log-normal tolerance-bound predictor."""

import math

import numpy as np
import pytest

from repro.core.lognormal import LogNormalPredictor, _factor_bucket
from repro.core.predictor import BoundKind
from repro.stats.tolerance import normal_quantile_upper_factor


def feed(predictor, values):
    for value in values:
        predictor.observe(float(value))
    predictor.refit()
    return predictor


class TestBoundComputation:
    def test_matches_closed_form(self, rng):
        values = rng.lognormal(4, 1, 500)
        predictor = feed(LogNormalPredictor(), values)
        logs = np.log(values + 1.0)
        k = normal_quantile_upper_factor(_factor_bucket(500), 0.95, 0.95)
        expected = math.exp(logs.mean() + k * logs.std(ddof=1)) - 1.0
        assert predictor.predict() == pytest.approx(expected, rel=1e-9)

    def test_needs_two_observations(self):
        predictor = LogNormalPredictor()
        predictor.observe(5.0)
        predictor.refit()
        assert predictor.predict() is None
        predictor.observe(7.0)
        predictor.refit()
        assert predictor.predict() is not None

    def test_constant_history_degenerates_gracefully(self):
        predictor = feed(LogNormalPredictor(), [10.0] * 50)
        assert predictor.predict() == pytest.approx(10.0, rel=1e-6)

    def test_lower_bound_kind(self, rng):
        values = rng.lognormal(4, 1, 500)
        upper = feed(LogNormalPredictor(), values).predict()
        lower = feed(
            LogNormalPredictor(kind=BoundKind.LOWER), values
        ).predict()
        assert lower < upper

    def test_overflow_clamped_to_finite(self):
        # Absurd spread: the exponent would overflow without the clamp.
        predictor = feed(LogNormalPredictor(), [0.0, 1e300])
        assert math.isfinite(predictor.predict())

    def test_zero_waits_are_representable(self):
        predictor = feed(LogNormalPredictor(), [0.0] * 30 + [5.0] * 30)
        assert predictor.predict() > 0.0

    def test_invalid_shift(self):
        with pytest.raises(ValueError):
            LogNormalPredictor(shift=0.0)


class TestRunningSums:
    def test_incremental_equals_batch(self, rng):
        values = rng.lognormal(3, 1, 300)
        incremental = LogNormalPredictor()
        for value in values:
            incremental.observe(float(value))
            incremental.refit()
        batch = feed(LogNormalPredictor(), values)
        assert incremental.predict() == pytest.approx(batch.predict(), rel=1e-9)

    def test_trim_rebuilds_sums(self, rng):
        values = list(rng.lognormal(3, 1, 300))
        predictor = LogNormalPredictor(trim=True)
        for value in values:
            predictor.observe(float(value))
        predictor.finish_training()
        bound = predictor.predict()
        for _ in range(predictor.miss_threshold):
            predictor.observe(bound * 100, predicted=bound)
        # After the change point, the fit must equal a fresh fit on the
        # retained suffix.
        retained = predictor.history.values
        fresh = feed(LogNormalPredictor(), retained)
        predictor.refit()
        assert predictor.predict() == pytest.approx(fresh.predict(), rel=1e-9)


class TestNames:
    def test_variant_names(self):
        assert LogNormalPredictor(trim=False).name == "logn-notrim"
        assert LogNormalPredictor(trim=True).name == "logn-trim"


class TestFactorBucketing:
    def test_exact_below_1000(self):
        assert _factor_bucket(999) == 999
        assert _factor_bucket(59) == 59

    def test_coarse_above_1000(self):
        assert _factor_bucket(12345) == 12300
        assert _factor_bucket(1234) == 1230

    def test_bucketing_error_is_negligible(self):
        for n in (1500, 15000, 150000):
            exact = normal_quantile_upper_factor(n, 0.95, 0.95)
            bucketed = normal_quantile_upper_factor(_factor_bucket(n), 0.95, 0.95)
            assert bucketed == pytest.approx(exact, rel=2e-3)


class TestCoverage:
    def test_sequential_coverage_on_true_lognormal(self, rng):
        """On data that really is (shifted) log-normal, coverage >= 0.95."""
        predictor = LogNormalPredictor()
        values = np.exp(rng.normal(4, 1.5, 5000)) - 1.0
        values = np.clip(values, 0.0, None)
        hits = total = 0
        for value in values:
            bound = predictor.predict()
            if bound is not None:
                total += 1
                hits += value <= bound
            predictor.observe(float(value))
            predictor.refit()
        assert total > 4500
        assert hits / total >= 0.945
