"""Tests for the observation history window."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryWindow

FLOATS = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestBasics:
    def test_empty(self):
        window = HistoryWindow()
        assert len(window) == 0
        assert not window
        assert window.sorted_values().size == 0

    def test_append_preserves_arrival_order(self):
        window = HistoryWindow()
        for value in (3.0, 1.0, 2.0):
            window.append(value)
        assert window.values == [3.0, 1.0, 2.0]

    def test_init_from_iterable(self):
        window = HistoryWindow([5.0, 1.0, 3.0])
        assert len(window) == 3
        assert list(window.sorted_values()) == [1.0, 3.0, 5.0]

    def test_clear(self):
        window = HistoryWindow([1.0, 2.0])
        window.clear()
        assert len(window) == 0
        assert window.sorted_values().size == 0


class TestSortedView:
    @given(values=st.lists(FLOATS, max_size=300))
    @settings(max_examples=100)
    def test_sorted_matches_python_sorted(self, values):
        window = HistoryWindow()
        for value in values:
            window.append(value)
        assert list(window.sorted_values()) == sorted(values)

    @given(
        batches=st.lists(st.lists(FLOATS, max_size=30), min_size=1, max_size=10)
    )
    @settings(max_examples=50)
    def test_interleaved_reads_and_writes(self, batches):
        """Reading the sorted view between append batches must not corrupt it."""
        window = HistoryWindow()
        everything = []
        for batch in batches:
            for value in batch:
                window.append(value)
            everything.extend(batch)
            assert list(window.sorted_values()) == sorted(everything)

    def test_sorted_view_reflects_later_appends(self):
        window = HistoryWindow([2.0, 1.0])
        assert list(window.sorted_values()) == [1.0, 2.0]
        window.append(0.5)
        assert list(window.sorted_values()) == [0.5, 1.0, 2.0]


class TestTrimming:
    def test_trim_keeps_most_recent(self):
        window = HistoryWindow(range(10))
        window.trim_to_recent(3)
        assert window.values == [7.0, 8.0, 9.0]
        assert list(window.sorted_values()) == [7.0, 8.0, 9.0]

    def test_trim_larger_than_length_is_noop(self):
        window = HistoryWindow([1.0, 2.0])
        window.trim_to_recent(5)
        assert window.values == [1.0, 2.0]

    def test_trim_to_zero(self):
        window = HistoryWindow([1.0, 2.0])
        window.trim_to_recent(0)
        assert len(window) == 0

    def test_trim_negative_rejected(self):
        with pytest.raises(ValueError):
            HistoryWindow([1.0]).trim_to_recent(-1)

    @given(
        values=st.lists(FLOATS, min_size=1, max_size=200),
        keep=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=100)
    def test_trim_then_append_stays_consistent(self, values, keep):
        window = HistoryWindow(values)
        window.trim_to_recent(keep)
        window.append(42.0)
        expected = values[max(0, len(values) - keep):] + [42.0]
        assert window.values == expected
        assert list(window.sorted_values()) == sorted(expected)


class TestMaxSize:
    def test_bounded_window_drops_oldest(self):
        window = HistoryWindow(max_size=3)
        for value in range(5):
            window.append(float(value))
        assert window.values == [2.0, 3.0, 4.0]

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            HistoryWindow(max_size=0)

    def test_sorted_view_of_bounded_window(self):
        window = HistoryWindow(max_size=4)
        for value in (9.0, 1.0, 8.0, 2.0, 7.0, 3.0):
            window.append(value)
        assert list(window.sorted_values()) == [2.0, 3.0, 7.0, 8.0]


class TestBufferSafety:
    def test_returned_array_is_not_recreated_per_call(self):
        window = HistoryWindow([3.0, 1.0, 2.0])
        first = window.sorted_values()
        second = window.sorted_values()
        assert first is second  # no copy when nothing changed
        assert isinstance(first, np.ndarray)

    def test_arrival_view_is_zero_copy(self):
        window = HistoryWindow([3.0, 1.0, 2.0])
        view = window.arrival_view()
        assert isinstance(view, np.ndarray)
        assert view.base is not None  # a view into the ring buffer, not a copy
        assert view.tolist() == [3.0, 1.0, 2.0]

    def test_arrival_view_tracks_eviction_and_trim(self):
        window = HistoryWindow(max_size=3)
        for value in range(5):
            window.append(float(value))
        assert window.arrival_view().tolist() == [2.0, 3.0, 4.0]
        window.trim_to_recent(1)
        assert window.arrival_view().tolist() == [4.0]


class TestAmortizedEviction:
    """The bounded window must behave exactly like a deque(maxlen=...) even
    though eviction is lazy and compaction amortized."""

    @given(
        max_size=st.integers(min_value=1, max_value=20),
        values=st.lists(FLOATS, max_size=400),
    )
    @settings(max_examples=60)
    def test_matches_deque_semantics(self, max_size, values):
        from collections import deque

        window = HistoryWindow(max_size=max_size)
        reference = deque(maxlen=max_size)
        for value in values:
            window.append(value)
            reference.append(value)
        assert window.values == list(reference)
        assert list(window.sorted_values()) == sorted(reference)

    def test_many_appends_stay_bounded(self):
        """Long-running bounded appends must not grow the buffer unboundedly."""
        window = HistoryWindow(max_size=100)
        for value in range(10_000):
            window.append(float(value))
        assert len(window) == 100
        assert window.values[0] == 9900.0
        # Compaction keeps the backing buffer at a constant multiple of the
        # window, independent of how many values ever passed through.
        assert window._buf.size <= 4 * 100

    def test_interleaved_reads_during_eviction(self):
        window = HistoryWindow(max_size=4)
        expected = []
        for value in (5.0, 3.0, 9.0, 1.0, 7.0, 2.0, 8.0):
            window.append(value)
            expected = (expected + [value])[-4:]
            assert window.values == expected
            assert list(window.sorted_values()) == sorted(expected)


class TestExtend:
    @given(
        prefix=st.lists(FLOATS, max_size=50),
        batch=st.lists(FLOATS, max_size=200),
        max_size=st.one_of(st.none(), st.integers(min_value=1, max_value=80)),
    )
    @settings(max_examples=100)
    def test_extend_matches_repeated_append(self, prefix, batch, max_size):
        """The vectorized bulk path is behaviorally identical to a loop."""
        bulk = HistoryWindow(prefix, max_size=max_size)
        loop = HistoryWindow(prefix, max_size=max_size)
        bulk.extend(batch)
        for value in batch:
            loop.append(value)
        assert bulk.values == loop.values
        assert list(bulk.sorted_values()) == list(loop.sorted_values())

    def test_extend_empty_is_noop(self):
        window = HistoryWindow([1.0, 2.0])
        window.extend([])
        assert window.values == [1.0, 2.0]

    def test_extend_larger_than_bound(self):
        window = HistoryWindow(max_size=3)
        window.extend(range(10))
        assert window.values == [7.0, 8.0, 9.0]

    def test_extend_accepts_ndarray(self):
        window = HistoryWindow()
        window.extend(np.array([3.0, 1.0]))
        assert window.values == [3.0, 1.0]


class TestOrderStatisticFastPath:
    """``order_statistic`` must agree with a full sort at every pending
    count — including the scalar 1- and 2-pending shortcuts and exact
    duplicates straddling the merge positions."""

    def _check_all_ranks(self, window):
        expected = sorted(window.values)
        for rank in range(1, len(expected) + 1):
            assert window.order_statistic(rank) == expected[rank - 1], rank

    def test_one_pending(self):
        for pending in (0.0, 2.5, 5.0, 99.0):
            window = HistoryWindow([5.0, 1.0, 3.0, 7.0])
            window.sorted_values()  # flush, then leave one value pending
            window.append(pending)
            self._check_all_ranks(window)

    def test_two_pending_all_orderings(self):
        for pair in ([0.0, 9.0], [9.0, 0.0], [4.0, 4.0], [1.0, 1.0], [6.5, 2.5]):
            window = HistoryWindow([5.0, 1.0, 3.0, 7.0, 1.0])
            window.sorted_values()
            window.append(pair[0])
            window.append(pair[1])
            self._check_all_ranks(window)

    def test_pending_duplicates_of_existing_values(self):
        window = HistoryWindow([2.0, 2.0, 4.0])
        window.sorted_values()
        window.append(2.0)
        window.append(4.0)
        self._check_all_ranks(window)

    def test_larger_pending_batch_uses_vectorized_merge(self):
        rng = np.random.default_rng(17)
        window = HistoryWindow(rng.lognormal(2.0, 1.0, 200).tolist())
        window.sorted_values()
        for value in rng.lognormal(2.0, 1.0, 10):
            window.append(float(value))
        self._check_all_ranks(window)

    def test_selection_folds_pending_so_repeat_queries_are_reads(self):
        # A rank query brings the maintained view up to date (the refit
        # cadence leaves at most a couple of pending appends, so the fold
        # is a scalar insert) — the next query on an unchanged window must
        # be a direct read with nothing left pending.
        window = HistoryWindow([3.0, 1.0, 2.0])
        window.sorted_values()
        window.append(0.5)
        assert window.order_statistic(1) == 0.5
        assert window._merged_end == window._end  # pending was folded
        assert not window._evicted
        assert window.order_statistic(4) == 3.0

    def test_flush_crossover_both_paths_agree(self):
        # Small pending batch -> incremental merge; large -> wholesale
        # resort.  Both must produce the identical sorted view.
        rng = np.random.default_rng(23)
        for batch_size in (3, 40, 120, 400):
            window = HistoryWindow(rng.lognormal(2.0, 1.0, 160).tolist())
            window.sorted_values()
            batch = rng.lognormal(2.0, 1.0, batch_size)
            window.extend(batch)
            merged = list(window.sorted_values())
            assert merged == sorted(window.values)
