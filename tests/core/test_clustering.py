"""Tests for attribute clustering and the clustered predictor."""

import numpy as np
import pytest

from repro.core.clustering import AttributeClusterer, ClusteredPredictor


def two_level_sample(rng, n=4000, small_mu=3.0, large_mu=7.0, boundary=16):
    """Attributes 1..64; waits depend on which side of `boundary` they sit."""
    attrs = rng.choice([1, 2, 4, 8, 32, 64], size=n)
    mus = np.where(attrs <= boundary, small_mu, large_mu)
    waits = np.exp(mus + 0.5 * rng.standard_normal(n))
    return attrs.astype(float), waits


class TestClusterer:
    def test_finds_the_true_boundary(self, rng):
        attrs, waits = two_level_sample(rng)
        clusterer = AttributeClusterer(max_clusters=2, min_leaf=100).fit(attrs, waits)
        assert clusterer.n_clusters == 2
        (boundary,) = clusterer.boundaries
        assert 8.0 < boundary < 32.0

    def test_no_split_on_homogeneous_data(self, rng):
        attrs = rng.choice([1, 2, 4, 8], size=2000).astype(float)
        waits = rng.lognormal(4, 1, 2000)  # independent of attrs
        clusterer = AttributeClusterer(max_clusters=4, min_leaf=100).fit(attrs, waits)
        # Splits may happen by chance but gains are tiny; allow at most one.
        assert clusterer.n_clusters <= 2

    def test_min_leaf_respected(self, rng):
        attrs, waits = two_level_sample(rng, n=300)
        clusterer = AttributeClusterer(max_clusters=4, min_leaf=200).fit(attrs, waits)
        assert clusterer.n_clusters == 1  # not enough data to split

    def test_three_level_structure(self, rng):
        attrs = rng.choice([1, 8, 64], size=6000).astype(float)
        mus = np.select([attrs == 1, attrs == 8, attrs == 64], [2.0, 5.0, 8.0])
        waits = np.exp(mus + 0.4 * rng.standard_normal(6000))
        clusterer = AttributeClusterer(max_clusters=3, min_leaf=100).fit(attrs, waits)
        assert clusterer.n_clusters == 3
        assert clusterer.cluster_of(1) == 0
        assert clusterer.cluster_of(8) == 1
        assert clusterer.cluster_of(64) == 2

    def test_cluster_of_requires_fit(self):
        with pytest.raises(ValueError):
            AttributeClusterer().cluster_of(4)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            AttributeClusterer().fit([1.0, 2.0], [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeClusterer(max_clusters=0)
        with pytest.raises(ValueError):
            AttributeClusterer(min_leaf=5)

    def test_never_splits_within_one_attribute_value(self, rng):
        attrs = np.full(2000, 8.0)
        waits = rng.lognormal(4, 2, 2000)  # wildly variable but one attr level
        clusterer = AttributeClusterer(max_clusters=4, min_leaf=100).fit(attrs, waits)
        assert clusterer.n_clusters == 1


class TestClusteredPredictor:
    def test_cluster_specific_bounds(self, rng):
        attrs, waits = two_level_sample(rng)
        predictor = ClusteredPredictor(max_clusters=2, min_leaf=100)
        predictor.train(attrs, waits)
        small_bound = predictor.predict(2)
        large_bound = predictor.predict(64)
        assert small_bound is not None and large_bound is not None
        # e^7 vs e^3 wait levels: bounds must separate by a wide margin.
        assert large_bound > 10 * small_bound

    def test_beats_population_bound_for_small_jobs(self, rng):
        attrs, waits = two_level_sample(rng)
        predictor = ClusteredPredictor(max_clusters=2, min_leaf=100)
        predictor.train(attrs, waits)
        population = predictor.fallback.predict()
        assert predictor.predict(2) < population  # much tighter for small jobs

    def test_observe_routes_to_the_right_cluster(self, rng):
        attrs, waits = two_level_sample(rng, n=2000)
        predictor = ClusteredPredictor(max_clusters=2, min_leaf=100)
        predictor.train(attrs, waits)
        before = len(predictor.members[0].history)
        predictor.observe(2, 50.0)
        predictor.refit()
        assert len(predictor.members[0].history) == before + 1

    def test_fallback_when_cluster_not_quotable(self, rng):
        # One cluster with too little data to quote: falls back to population.
        attrs = np.concatenate([np.full(3000, 1.0), np.full(30, 64.0)])
        waits = np.concatenate([rng.lognormal(3, 1, 3000), rng.lognormal(8, 1, 30)])
        predictor = ClusteredPredictor(max_clusters=2, min_leaf=15)
        predictor.train(attrs, waits)
        bound = predictor.predict(64)
        assert bound is not None  # quotable via some path

    def test_requires_training(self):
        predictor = ClusteredPredictor()
        with pytest.raises(ValueError):
            predictor.predict(4)
        with pytest.raises(ValueError):
            predictor.observe(4, 1.0)

    def test_sequential_coverage(self, rng):
        attrs, waits = two_level_sample(rng, n=3000)
        predictor = ClusteredPredictor(max_clusters=2, min_leaf=100)
        predictor.train(attrs[:1000], waits[:1000])
        hits = total = 0
        for attribute, wait in zip(attrs[1000:], waits[1000:]):
            bound = predictor.predict(attribute)
            if bound is not None:
                total += 1
                hits += wait <= bound
            predictor.observe(attribute, wait)
            predictor.refit()
        assert total > 1500
        assert hits / total >= 0.94
