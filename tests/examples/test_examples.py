"""Smoke tests: the quickest example scripts run end to end.

The longer examples (compare_sites, job_size_advisor, scheduler_substrate,
forecaster_service) exercise code paths the integration tests already
cover at smaller scale; the two here are fast enough to run every time and
verify the example code itself stays in sync with the API.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_prints_bounds(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "95% confidence upper bound" in out
        assert "your job will start within" in out
        assert "change points detected" in out

    def test_forecast_ladder_is_sensible(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "95% of jobs start within" in out


class TestSwfWorkloads:
    def test_runs(self, capsys, tmp_path):
        # Redirect the demo SWF into the test's tmp dir.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "swf_workloads_example", EXAMPLES / "swf_workloads.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.SWF_PATH = tmp_path / "demo.swf"
        module.main()
        out = capsys.readouterr().out
        assert "loaded" in out
        assert "bmbp" in out
        assert "coverage" in out
