"""Tests for order-statistic helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.order_stats import order_statistic, quantile_index, rank_of_value


class TestOrderStatistic:
    def test_one_indexed(self):
        values = [1.0, 2.0, 3.0]
        assert order_statistic(values, 1) == 1.0
        assert order_statistic(values, 3) == 3.0

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            order_statistic([1.0], 0)
        with pytest.raises(IndexError):
            order_statistic([1.0], 2)


class TestQuantileIndex:
    def test_ceiling_convention(self):
        assert quantile_index(100, 0.95) == 95
        assert quantile_index(10, 0.95) == 10
        assert quantile_index(10, 0.05) == 1
        assert quantile_index(3, 0.5) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            quantile_index(0, 0.5)
        with pytest.raises(ValueError):
            quantile_index(10, 1.0)

    @given(
        n=st.integers(min_value=1, max_value=100_000),
        q=st.floats(min_value=0.001, max_value=0.999),
    )
    @settings(max_examples=200)
    def test_index_always_valid_and_covers_quantile(self, n, q):
        k = quantile_index(n, q)
        assert 1 <= k <= n
        assert k / n >= q - 1e-12  # at least fraction q at or below rank k


class TestRankOfValue:
    def test_counts_at_or_below(self):
        values = [1.0, 2.0, 2.0, 3.0]
        assert rank_of_value(values, 2.0) == 3
        assert rank_of_value(values, 0.5) == 0
        assert rank_of_value(values, 10.0) == 4

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1
        ),
        probe=st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_matches_naive_count(self, values, probe):
        values = sorted(values)
        assert rank_of_value(values, probe) == sum(v <= probe for v in values)
