"""Tests for the parametric and empirical distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.distributions import (
    EmpiricalDistribution,
    LogNormalDistribution,
    LogUniformDistribution,
    fit_lognormal,
    fit_loguniform,
)


class TestLogNormal:
    def test_median_and_mean_closed_forms(self):
        dist = LogNormalDistribution(mu=3.0, sigma=1.0, shift=0.0)
        assert dist.median == pytest.approx(math.exp(3.0))
        assert dist.mean == pytest.approx(math.exp(3.5))
        assert dist.std == pytest.approx(
            math.sqrt((math.e - 1) * math.exp(7.0))
        )

    def test_quantile_inverts_cdf(self):
        dist = LogNormalDistribution(mu=2.0, sigma=1.5)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_from_mean_median_roundtrip(self):
        dist = LogNormalDistribution.from_mean_median(1000.0, 100.0, shift=1.0)
        assert dist.median == pytest.approx(100.0, rel=1e-9)
        assert dist.mean == pytest.approx(1000.0, rel=1e-9)

    def test_from_mean_median_light_tail_clamps_sigma(self):
        # mean <= median cannot come from a log-normal; sigma clamps to 0.
        dist = LogNormalDistribution.from_mean_median(50.0, 100.0)
        assert dist.sigma == 0.0

    def test_sampling_matches_parameters(self, rng):
        dist = LogNormalDistribution(mu=3.0, sigma=0.8, shift=1.0)
        draws = dist.sample(100_000, rng)
        assert float(np.median(draws)) == pytest.approx(dist.median, rel=0.03)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalDistribution(mu=0.0, sigma=-1.0)

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LogNormalDistribution(mu=0.0, sigma=1.0).quantile(1.0)

    def test_mle_fit_recovers_parameters(self, rng):
        true = LogNormalDistribution(mu=4.0, sigma=1.2, shift=1.0)
        draws = np.clip(true.sample(50_000, rng), 0.0, None)
        fitted = fit_lognormal(draws, shift=1.0)
        assert fitted.mu == pytest.approx(4.0, abs=0.05)
        assert fitted.sigma == pytest.approx(1.2, abs=0.05)

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_lognormal([])
        with pytest.raises(ValueError):
            fit_lognormal([-5.0], shift=1.0)


class TestLogUniform:
    def test_quantiles_span_support(self):
        dist = LogUniformDistribution(log_lo=0.0, log_hi=10.0, shift=0.0)
        assert dist.quantile(0.5) == pytest.approx(math.exp(5.0))
        assert dist.cdf(math.exp(2.5)) == pytest.approx(0.25)

    def test_cdf_clamps_outside_support(self):
        dist = LogUniformDistribution(log_lo=1.0, log_hi=2.0, shift=0.0)
        assert dist.cdf(0.1) == 0.0
        assert dist.cdf(math.exp(3.0)) == 1.0

    def test_degenerate_support(self):
        dist = LogUniformDistribution(log_lo=2.0, log_hi=2.0, shift=0.0)
        assert dist.cdf(math.exp(2.0)) == 1.0

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            LogUniformDistribution(log_lo=2.0, log_hi=1.0)

    def test_fit_uses_sample_range(self):
        fitted = fit_loguniform([0.0, 7.0, 63.0], shift=1.0)
        assert fitted.log_lo == pytest.approx(0.0)
        assert fitted.log_hi == pytest.approx(math.log(64.0))

    def test_sampling_within_support(self, rng):
        dist = LogUniformDistribution(log_lo=1.0, log_hi=5.0, shift=1.0)
        draws = dist.sample(1000, rng)
        assert draws.min() >= math.exp(1.0) - 1.0 - 1e-9
        assert draws.max() <= math.exp(5.0) - 1.0 + 1e-9


class TestEmpirical:
    def test_quantile_is_conservative_order_statistic(self):
        dist = EmpiricalDistribution([5.0, 1.0, 3.0, 2.0, 4.0])
        assert dist.quantile(0.5) == 3.0
        assert dist.quantile(0.9) == 5.0
        assert dist.quantile(0.1) == 1.0

    def test_cdf(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(2.5) == pytest.approx(0.5)
        assert dist.cdf(0.0) == 0.0
        assert dist.cdf(10.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])

    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1
        ),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_quantile_within_sample_range(self, values, q):
        dist = EmpiricalDistribution(values)
        assert min(values) <= dist.quantile(q) <= max(values)
