"""Tests for autocorrelation estimation."""

import numpy as np
import pytest

from repro.stats.autocorrelation import (
    autocorrelation,
    autocorrelation_function,
    first_autocorrelation,
)


class TestAutocorrelation:
    def test_lag_zero_is_one(self, rng):
        assert autocorrelation(rng.normal(size=100), 0) == 1.0

    def test_ar1_estimate(self, rng):
        rho = 0.6
        n = 100_000
        series = np.empty(n)
        series[0] = rng.normal()
        noise = rng.normal(size=n) * np.sqrt(1 - rho**2)
        for i in range(1, n):
            series[i] = rho * series[i - 1] + noise[i]
        assert autocorrelation(series, 1) == pytest.approx(rho, abs=0.02)
        assert autocorrelation(series, 2) == pytest.approx(rho**2, abs=0.02)

    def test_alternating_series_is_negative(self):
        series = np.array([1.0, -1.0] * 50)
        assert autocorrelation(series, 1) == pytest.approx(-1.0, abs=0.02)

    def test_constant_series_returns_zero(self):
        assert autocorrelation([5.0] * 100, 1) == 0.0

    def test_short_series_returns_zero(self):
        assert autocorrelation([1.0, 2.0], 5) == 0.0
        assert autocorrelation([1.0], 1) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([1.0, 2.0, 3.0], -1)


class TestAcf:
    def test_shape_and_first_element(self, rng):
        acf = autocorrelation_function(rng.normal(size=500), 10)
        assert acf.shape == (11,)
        assert acf[0] == 1.0

    def test_iid_acf_near_zero(self, rng):
        acf = autocorrelation_function(rng.normal(size=50_000), 5)
        assert np.all(np.abs(acf[1:]) < 0.03)

    def test_negative_max_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_function([1.0, 2.0], -1)


class TestFirstAutocorrelation:
    def test_log_space_tames_heavy_tails(self, rng):
        # A single enormous outlier dominates the linear-space estimate but
        # not the log-space one.
        series = list(rng.lognormal(2, 0.5, 500))
        series[250] = 1e12
        linear = first_autocorrelation(series, log_space=False)
        logged = first_autocorrelation(series, log_space=True)
        assert abs(logged) < 0.5
        assert abs(logged - autocorrelation(np.log1p(np.array(series)), 1)) < 1e-12
        assert linear != logged

    def test_zero_waits_are_handled(self):
        series = [0.0, 5.0, 0.0, 7.0] * 50
        value = first_autocorrelation(series)
        assert -1.0 <= value <= 1.0
