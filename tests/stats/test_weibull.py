"""Tests for the Weibull distribution and MLE fit."""

import math

import numpy as np
import pytest

from repro.stats.weibull import WeibullDistribution, fit_weibull


class TestDistribution:
    def test_exponential_special_case(self):
        # shape=1 is the exponential distribution.
        dist = WeibullDistribution(shape=1.0, scale=100.0)
        assert dist.mean == pytest.approx(100.0)
        assert dist.quantile(1 - math.exp(-1)) == pytest.approx(100.0)

    def test_quantile_inverts_cdf(self):
        dist = WeibullDistribution(shape=0.7, scale=500.0)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q)

    def test_median(self):
        dist = WeibullDistribution(shape=2.0, scale=10.0)
        assert dist.median == pytest.approx(10.0 * math.log(2) ** 0.5)

    def test_cdf_at_zero(self):
        assert WeibullDistribution(shape=1.5, scale=1.0).cdf(0.0) == 0.0
        assert WeibullDistribution(shape=1.5, scale=1.0).cdf(-5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WeibullDistribution(shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            WeibullDistribution(shape=1.0, scale=-1.0)
        with pytest.raises(ValueError):
            WeibullDistribution(shape=1.0, scale=1.0).quantile(1.0)

    def test_sampling(self, rng):
        dist = WeibullDistribution(shape=1.5, scale=200.0)
        draws = dist.sample(100_000, rng)
        assert float(np.mean(draws)) == pytest.approx(dist.mean, rel=0.02)


class TestFit:
    @pytest.mark.parametrize("shape, scale", [(0.6, 300.0), (1.0, 50.0), (2.5, 1000.0)])
    def test_recovers_parameters(self, rng, shape, scale):
        true = WeibullDistribution(shape=shape, scale=scale)
        draws = true.sample(50_000, rng)
        fitted = fit_weibull(draws, shift=0.0 + 1e-12)
        assert fitted.shape == pytest.approx(shape, rel=0.03)
        assert fitted.scale == pytest.approx(scale, rel=0.03)

    def test_handles_zero_waits_via_shift(self):
        fitted = fit_weibull([0.0, 1.0, 5.0, 20.0, 100.0], shift=1.0)
        assert fitted.shape > 0.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_weibull([1.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            fit_weibull([-10.0, 5.0], shift=1.0)
