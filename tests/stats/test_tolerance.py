"""Tests for normal one-sided tolerance factors (Guttman's K')."""

import math

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.tolerance import (
    minimum_sample_size_normal,
    normal_quantile_lower_factor,
    normal_quantile_upper_factor,
)


class TestPublishedValues:
    """Spot-check against widely tabulated one-sided tolerance factors."""

    @pytest.mark.parametrize(
        "n, expected",
        [
            # k factors for P=0.95, confidence 0.95 (standard tables).
            (10, 2.911),
            (20, 2.396),
            (50, 2.065),
            (100, 1.927),
        ],
    )
    def test_k_factor_p95_c95(self, n, expected):
        assert normal_quantile_upper_factor(n, 0.95, 0.95) == pytest.approx(
            expected, abs=0.005
        )

    def test_converges_to_z_quantile(self):
        z95 = float(sps.norm.ppf(0.95))
        factor = normal_quantile_upper_factor(10_000_000, 0.95, 0.95)
        assert factor == pytest.approx(z95, abs=0.002)


class TestStructure:
    def test_monotone_decreasing_in_n(self):
        factors = [
            normal_quantile_upper_factor(n, 0.95, 0.95) for n in (5, 20, 100, 1000)
        ]
        assert factors == sorted(factors, reverse=True)

    def test_monotone_in_confidence(self):
        factors = [
            normal_quantile_upper_factor(50, 0.95, c) for c in (0.5, 0.8, 0.95, 0.99)
        ]
        assert factors == sorted(factors)

    def test_monotone_in_quantile(self):
        factors = [
            normal_quantile_upper_factor(50, q, 0.95) for q in (0.5, 0.75, 0.9, 0.99)
        ]
        assert factors == sorted(factors)

    def test_lower_factor_symmetry(self):
        upper = normal_quantile_upper_factor(40, 0.95, 0.9)
        lower = normal_quantile_lower_factor(40, 0.05, 0.9)
        assert lower == pytest.approx(-upper)

    def test_median_factors_bracket_zero(self):
        assert normal_quantile_upper_factor(30, 0.5, 0.95) > 0.0
        assert normal_quantile_lower_factor(30, 0.5, 0.95) < 0.0

    def test_minimum_sample_size(self):
        assert minimum_sample_size_normal() == 2
        with pytest.raises(ValueError):
            normal_quantile_upper_factor(1, 0.95, 0.95)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            normal_quantile_upper_factor(10, 0.0, 0.95)
        with pytest.raises(ValueError):
            normal_quantile_upper_factor(10, 0.95, 1.0)


class TestCoverage:
    def test_upper_bound_coverage_by_monte_carlo(self, rng):
        """m + K's exceeds the true quantile in ~confidence of samples."""
        n, q, c = 30, 0.9, 0.9
        k = normal_quantile_upper_factor(n, q, c)
        true_quantile = float(sps.norm.ppf(q))
        reps = 4000
        covered = 0
        for _ in range(reps):
            sample = rng.standard_normal(n)
            covered += sample.mean() + k * sample.std(ddof=1) >= true_quantile
        rate = covered / reps
        assert rate == pytest.approx(c, abs=3 * math.sqrt(c * (1 - c) / reps))
