"""Tests for descriptive trace statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import DescriptiveSummary, heavy_tail_ratio, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(22.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4, 100], ddof=1))

    def test_single_element(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.mean == summary.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False), min_size=1
        )
    )
    @settings(max_examples=100)
    def test_median_between_min_and_max(self, values):
        summary = summarize(values)
        lo, hi = min(values), max(values)
        assert lo <= summary.median <= hi
        # Mean may carry a few ULPs of float rounding.
        tolerance = 1e-12 * max(hi, 1.0)
        assert lo - tolerance <= summary.mean <= hi + tolerance


class TestHeavyTail:
    def test_tail_ratio(self):
        assert heavy_tail_ratio([1.0, 1.0, 10.0]) == pytest.approx(4.0)

    def test_zero_median_gives_inf(self):
        summary = DescriptiveSummary(count=3, mean=5.0, median=0.0, std=1.0)
        assert summary.tail_ratio == float("inf")

    def test_all_zero_gives_one(self):
        summary = DescriptiveSummary(count=3, mean=0.0, median=0.0, std=0.0)
        assert summary.tail_ratio == 1.0

    def test_is_heavy_tailed_on_table1_like_numbers(self):
        # datastar/normal: mean 35886, median 1795, std 100255.
        summary = DescriptiveSummary(count=48543, mean=35886, median=1795, std=100255)
        assert summary.is_heavy_tailed()

    def test_symmetric_queue_is_not_heavy(self):
        # lanl/schammpq: mean 7955, median 8450 (mean < median).
        summary = DescriptiveSummary(count=1386, mean=7955, median=8450, std=8481)
        assert not summary.is_heavy_tailed()

    def test_coefficient_of_variation(self):
        summary = DescriptiveSummary(count=10, mean=100.0, median=50.0, std=250.0)
        assert summary.coefficient_of_variation == pytest.approx(2.5)
        zero = DescriptiveSummary(count=10, mean=0.0, median=0.0, std=0.0)
        assert zero.coefficient_of_variation == 0.0
