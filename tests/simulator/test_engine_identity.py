"""Batched-vs-reference replay engine identity.

The batched kernel's contract is *exactness*: per-job outcomes, skip
counts, change points, and the per-refit bound series must match the
per-event reference engine — the batching is a pure reorganization of the
same arithmetic, not an approximation.  The property test throws randomized
small traces at both engines (tied submit times, zero waits, short trim
lengths that force mid-segment fires, sliding windows, epoch/​training
variations); the deterministic tests pin the specific regimes the kernel
special-cases: change-point fire splitting, zero-wait drain ties, the
small-batch scalar path, and engine selection plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    MaxObservedPredictor,
    MeanWaitPredictor,
    PointQuantilePredictor,
)
from repro.core import BMBPPredictor, BoundKind, LogNormalPredictor
from repro.runtime import configure, reset_configuration
from repro.simulator.replay import ENGINE_ENV_VAR, ReplayConfig, replay


def _bank():
    """Predictors covering every kernel path: order-statistic and running-sum
    refits, trimming (short lengths so random traces actually fire),
    sliding windows, non-batch-aware overrides, and a lower bound."""
    return {
        "bmbp-trim": BMBPPredictor(trim=True, trim_length=4),
        "bmbp-window": BMBPPredictor(trim=False, max_history=16),
        "logn-trim": LogNormalPredictor(trim=True, trim_length=4),
        "logn-lower": LogNormalPredictor(
            quantile=0.05, kind=BoundKind.LOWER, trim=True, trim_length=4
        ),
        "point": PointQuantilePredictor(),
        "max-observed": MaxObservedPredictor(),
        "mean-wait": MeanWaitPredictor(),
    }


def _make_trace(gaps, waits):
    from repro.workloads.trace import Trace

    submits = np.cumsum(np.asarray(gaps, dtype=float))
    return Trace.from_arrays(submits, np.asarray(waits, dtype=float), name="prop")


def _assert_identical(trace, config):
    batched = replay(trace, _bank(), config, engine="batched")
    reference = replay(trace, _bank(), config, engine="reference")
    assert set(batched) == set(reference)
    for name in batched:
        a, b = batched[name], reference[name]
        assert a.n_evaluated == b.n_evaluated, name
        assert a.n_correct == b.n_correct, name
        assert a.n_skipped == b.n_skipped, name
        assert a.change_points == b.change_points, name
        ra, rb = np.asarray(a.ratios), np.asarray(b.ratios)
        assert ra.shape == rb.shape, name
        finite = np.isfinite(rb)
        assert np.array_equal(np.isfinite(ra), finite), name
        np.testing.assert_allclose(ra[finite], rb[finite], rtol=1e-9, err_msg=name)
        assert list(a.series_times) == list(b.series_times), name
        sa = np.asarray(a.series_values, dtype=float)
        sb = np.asarray(b.series_values, dtype=float)
        assert np.array_equal(np.isnan(sa), np.isnan(sb)), name
        ok = ~np.isnan(sb)
        np.testing.assert_allclose(sa[ok], sb[ok], rtol=1e-9, err_msg=name)


# Coarse gap choices create tied submit times (gap 0), multiple jobs per
# epoch (small gaps), and empty epochs (900 > the 300 s default) — every
# segment shape the kernel distinguishes.
GAPS = st.sampled_from([0.0, 1.0, 30.0, 150.0, 301.0, 900.0])
# Zero waits are over-represented on purpose: they drain at their own
# submit instant and exercise the drain-order tie rule.
WAITS = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
)
JOBS = st.lists(st.tuples(GAPS, WAITS), min_size=5, max_size=50)


class TestEngineIdentityProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        jobs=JOBS,
        epoch=st.sampled_from([50.0, 300.0]),
        training=st.sampled_from([0.0, 0.1, 0.3]),
    )
    def test_random_traces(self, jobs, epoch, training):
        trace = _make_trace([g for g, _ in jobs], [w for _, w in jobs])
        config = ReplayConfig(
            epoch=epoch, training_fraction=training, record_series=True
        )
        _assert_identical(trace, config)

    @settings(max_examples=15, deadline=None)
    @given(jobs=JOBS)
    def test_epoch_zero_uses_reference_semantics(self, jobs):
        # epoch=0 has no segments to batch; the batched entry point must
        # fall back to the reference loop and match it trivially.
        trace = _make_trace([g for g, _ in jobs], [w for _, w in jobs])
        _assert_identical(trace, ReplayConfig(epoch=0.0, record_series=True))


def _mode_bank(refit_mode):
    """Every predictor whose two refit modes compute the *same* answer.

    The short trim length and sliding window force the maintained sorted
    views through evictions and change-point trims, not just appends.
    Weibull (streamed sufficient statistics with a tolerance-gated
    acceptance) and bootstrap (two-order-statistic draw vs materialized
    resamples) run genuinely different algorithms per mode, so they are
    covered by the statistical-equivalence tests below instead.
    """
    return {
        "bmbp-trim": BMBPPredictor(trim=True, trim_length=4, refit_mode=refit_mode),
        "bmbp-window": BMBPPredictor(
            trim=False, max_history=16, refit_mode=refit_mode
        ),
        "point": PointQuantilePredictor(refit_mode=refit_mode),
        "mean-wait": MeanWaitPredictor(refit_mode=refit_mode),
    }


#: Methods whose incremental refit is *bit-identical* to recompute (the
#: order-statistic exactness tier); the rest agree to float roundoff.
_EXACT_MODE_METHODS = {"bmbp-trim", "bmbp-window", "point"}


class TestRefitModeIdentity:
    """``refit_mode="incremental"`` (maintained views, rank subscriptions,
    log caches, running sums) against ``"recompute"`` (the legacy
    sort-per-refit paths): same bounds, same outcomes, same change points.
    Order-statistic methods must match bit for bit."""

    @settings(max_examples=30, deadline=None)
    @given(
        jobs=JOBS,
        epoch=st.sampled_from([50.0, 300.0]),
        engine=st.sampled_from(["batched", "reference"]),
    )
    def test_incremental_matches_recompute(self, jobs, epoch, engine):
        trace = _make_trace([g for g, _ in jobs], [w for _, w in jobs])
        config = ReplayConfig(epoch=epoch, record_series=True)
        incremental = replay(trace, _mode_bank("incremental"), config, engine=engine)
        recompute = replay(trace, _mode_bank("recompute"), config, engine=engine)
        assert set(incremental) == set(recompute)
        for name in incremental:
            a, b = incremental[name], recompute[name]
            assert a.n_evaluated == b.n_evaluated, name
            assert a.n_correct == b.n_correct, name
            assert a.n_skipped == b.n_skipped, name
            assert a.change_points == b.change_points, name
            sa = np.asarray(a.series_values, dtype=float)
            sb = np.asarray(b.series_values, dtype=float)
            assert np.array_equal(np.isnan(sa), np.isnan(sb)), name
            ok = ~np.isnan(sb)
            if name in _EXACT_MODE_METHODS:
                assert np.array_equal(sa[ok], sb[ok]), name
            else:
                np.testing.assert_allclose(sa[ok], sb[ok], rtol=1e-9, err_msg=name)

    def test_modes_identical_through_fire_heavy_replay(self):
        # The fire-splitting path re-quotes mid-segment right after a trim:
        # the maintained views must survive trim → rebuild → refit cycles
        # bit-identically, which random small traces rarely stress.
        rng = np.random.default_rng(3)
        calm = rng.lognormal(2.0, 0.3, 120)
        burst = rng.lognormal(4.5, 0.2, 40)
        waits = np.concatenate([calm, burst, calm[:40]])
        trace = _make_trace(np.full(waits.size, 30.0), waits)
        config = ReplayConfig(record_series=True)
        incremental = replay(trace, _mode_bank("incremental"), config)
        recompute = replay(trace, _mode_bank("recompute"), config)
        assert incremental["bmbp-trim"].change_points > 0
        for name in _EXACT_MODE_METHODS:
            sa = np.asarray(incremental[name].series_values, dtype=float)
            sb = np.asarray(recompute[name].series_values, dtype=float)
            assert np.array_equal(np.isnan(sa), np.isnan(sb)), name
            ok = ~np.isnan(sb)
            assert np.array_equal(sa[ok], sb[ok]), name


class TestModeEquivalenceStatistical:
    """Weibull and bootstrap run different *algorithms* per refit mode;
    their contract is statistical agreement, not value identity."""

    def test_weibull_streamed_fit_tracks_the_full_fit(self):
        # The streamed sufficient statistics accept the standing shape only
        # while the implied Newton step stays under 2e-3 of it, so every
        # quoted bound must sit within a small relative band of the
        # recompute (full-fit-every-refit) bound over a long replay.
        from repro.baselines import WeibullPredictor

        rng = np.random.default_rng(11)
        waits = rng.lognormal(3.0, 0.8, 3000)
        trace = _make_trace(np.full(waits.size, 400.0), waits)
        config = ReplayConfig(record_series=True)
        out = {}
        for mode in ("incremental", "recompute"):
            bank = {"weibull": WeibullPredictor(max_history=500, refit_mode=mode)}
            out[mode] = replay(trace, bank, config, engine="batched")["weibull"]
        sa = np.asarray(out["incremental"].series_values, dtype=float)
        sb = np.asarray(out["recompute"].series_values, dtype=float)
        assert np.array_equal(np.isnan(sa), np.isnan(sb))
        ok = ~np.isnan(sb)
        assert ok.sum() > 1000  # the stream actually ran, at scale
        rel = np.abs(sa[ok] - sb[ok]) / sb[ok]
        assert rel.max() < 1e-2
        assert rel.mean() < 2e-3

    def test_bootstrap_two_draw_matches_materialized_distribution(self):
        # Same frozen window, many refits per mode: the two-order-statistic
        # draw must reproduce the materialized bootstrap's bound
        # *distribution* (same mean and spread), not its realizations.
        from repro.baselines import BootstrapQuantilePredictor

        rng = np.random.default_rng(29)
        window = rng.lognormal(3.0, 1.0, 600)
        samples = {}
        for mode, seed in (("incremental", 1), ("recompute", 2)):
            predictor = BootstrapQuantilePredictor(
                trim=False, seed=seed, refit_mode=mode
            )
            for wait in window:
                predictor.observe(float(wait))
            draws = []
            for _ in range(800):
                draws.append(predictor._compute_bound())
            samples[mode] = np.asarray(draws, dtype=float)
        a, b = samples["incremental"], samples["recompute"]
        assert abs(a.mean() - b.mean()) / b.mean() < 0.02
        assert abs(a.std() - b.std()) / b.mean() < 0.02
        for q in (0.1, 0.5, 0.9):
            qa, qb = np.quantile(a, q), np.quantile(b, q)
            assert abs(qa - qb) / qb < 0.03, q


class TestEngineIdentityDeterministic:
    def test_fire_splitting_mid_segment(self):
        # A calm prefix, then a burst of huge waits arriving within one
        # epoch: the trimming predictors must fire mid-segment, and the
        # post-trim quote must be restamped onto the rest of the segment
        # exactly as the reference engine would.
        rng = np.random.default_rng(3)
        calm = rng.lognormal(2.0, 0.3, 120)
        burst = rng.lognormal(4.5, 0.2, 40)
        waits = np.concatenate([calm, burst, calm[:40]])
        trace = _make_trace(np.full(waits.size, 30.0), waits)
        config = ReplayConfig(record_series=True)
        result = replay(
            trace, {"p": BMBPPredictor(trim=True, trim_length=4)},
            config, engine="batched",
        )["p"]
        assert result.change_points > 0  # the split path actually ran
        _assert_identical(trace, config)

    def test_all_zero_waits_with_tied_submits(self):
        # Every job starts the instant it is submitted, at timestamps that
        # collide: the worst case for the drain-order tie rule.
        trace = _make_trace([0.0, 0.0, 300.5, 0.0, 0.0, 0.0, 300.5, 0.0] * 4,
                            [0.0] * 32)
        _assert_identical(trace, ReplayConfig(record_series=True))

    def test_single_job_segments_small_batch_path(self):
        # One job per epoch: exercises the scalar small-batch feed.
        rng = np.random.default_rng(5)
        waits = rng.lognormal(3.0, 1.0, 40)
        trace = _make_trace(np.full(40, 310.0), waits)
        _assert_identical(trace, ReplayConfig(record_series=True))


class TestEngineSelection:
    def test_env_var_escape_hatch(self, monkeypatch, small_trace):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        via_env = replay(small_trace, _bank(), ReplayConfig())
        explicit = replay(small_trace, _bank(), ReplayConfig(), engine="reference")
        for name in via_env:
            assert via_env[name].n_correct == explicit[name].n_correct

    def test_unknown_engine_rejected(self, small_trace):
        with pytest.raises(ValueError, match="replay engine"):
            replay(small_trace, _bank(), ReplayConfig(), engine="fancy")

    def test_configure_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        import os

        configure(engine="reference")
        try:
            assert os.environ[ENGINE_ENV_VAR] == "reference"
        finally:
            reset_configuration()
        assert ENGINE_ENV_VAR not in os.environ

    def test_configure_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="replay engine"):
            configure(engine="fancy")
