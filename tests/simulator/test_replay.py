"""Tests for the Section 5.1 trace-replay simulator."""

import math

import numpy as np
import pytest

from repro.core.bmbp import BMBPPredictor
from repro.core.predictor import BoundKind, QuantilePredictor
from repro.simulator.replay import ReplayConfig, replay, replay_single
from repro.workloads.trace import Job, Trace

from tests.conftest import make_trace


class ConstantPredictor(QuantilePredictor):
    """Always quotes a fixed bound; records what it observed and when."""

    name = "constant"

    def __init__(self, bound, **kwargs):
        kwargs.setdefault("trim", False)
        super().__init__(**kwargs)
        self.bound = bound
        self.observed = []

    def observe(self, wait, predicted=None):
        self.observed.append((wait, predicted))
        super().observe(wait, predicted=predicted)

    def _compute_bound(self):
        return self.bound


class TestBookkeeping:
    def test_counts_add_up(self, small_trace):
        result = replay_single(small_trace, ConstantPredictor(1e9))
        n_train = math.ceil(0.1 * len(small_trace))
        assert result.n_evaluated + result.n_skipped == len(small_trace) - n_train

    def test_training_jobs_are_not_scored(self, small_trace):
        config = ReplayConfig(training_fraction=0.5)
        result = replay_single(small_trace, ConstantPredictor(1e9), config)
        assert result.n_evaluated == len(small_trace) - math.ceil(0.5 * len(small_trace))

    def test_zero_training(self, small_trace):
        config = ReplayConfig(training_fraction=0.0)
        result = replay_single(small_trace, ConstantPredictor(1e9), config)
        assert result.n_evaluated == len(small_trace)

    def test_empty_trace(self):
        result = replay_single(Trace(jobs=[]), ConstantPredictor(1.0))
        assert result.n_evaluated == 0
        assert math.isnan(result.fraction_correct)

    def test_none_predictions_are_skipped(self, small_trace):
        result = replay_single(small_trace, ConstantPredictor(None))
        assert result.n_skipped > 0
        assert result.n_evaluated == 0


class TestScoring:
    def test_all_correct_with_huge_bound(self, small_trace):
        result = replay_single(small_trace, ConstantPredictor(1e12))
        assert result.fraction_correct == 1.0

    def test_all_wrong_with_zero_bound(self):
        trace = make_trace([5.0] * 100)
        result = replay_single(trace, ConstantPredictor(0.0))
        assert result.fraction_correct == 0.0
        # actual > 0, predicted == 0 -> infinite ratio, filtered from median.
        assert math.isnan(result.median_ratio)

    def test_zero_actual_zero_bound_is_correct(self):
        trace = make_trace([0.0] * 100)
        result = replay_single(trace, ConstantPredictor(0.0))
        assert result.fraction_correct == 1.0
        assert result.median_ratio == 1.0

    def test_boundary_equality_counts_as_correct(self):
        trace = make_trace([7.0] * 100)
        result = replay_single(trace, ConstantPredictor(7.0))
        assert result.fraction_correct == 1.0

    def test_lower_bound_scoring_flips(self):
        trace = make_trace([10.0] * 100)
        low = ConstantPredictor(5.0, kind=BoundKind.LOWER)
        result = replay_single(trace, low)
        assert result.fraction_correct == 1.0  # actual 10 >= bound 5
        high = ConstantPredictor(20.0, kind=BoundKind.LOWER)
        result = replay_single(make_trace([10.0] * 100), high)
        assert result.fraction_correct == 0.0

    def test_median_ratio(self):
        trace = make_trace([10.0] * 100)
        result = replay_single(trace, ConstantPredictor(40.0))
        assert result.median_ratio == pytest.approx(0.25)

    def test_record_jobs(self, small_trace):
        config = ReplayConfig(record_jobs=True)
        result = replay_single(small_trace, ConstantPredictor(1e9), config)
        assert len(result.jobs) == result.n_evaluated
        assert all(record.correct for record in result.jobs)


class TestVisibility:
    """The predictor must never see a wait before the job starts."""

    def test_pending_waits_are_hidden(self):
        # Job 0 waits 1e9 seconds; it must never enter history during the
        # replay because it never starts within the trace.
        jobs = [Job(submit_time=0.0, wait=1e9)]
        jobs += [Job(submit_time=60.0 * (i + 1), wait=1.0) for i in range(100)]
        predictor = ConstantPredictor(10.0)
        replay_single(Trace(jobs=jobs), predictor)
        observed_waits = [wait for wait, _ in predictor.observed]
        assert 1e9 not in observed_waits

    def test_waits_become_visible_at_start_time(self):
        # The 150 s wait submitted at t=0 becomes visible (start t=150)
        # before the job submitted at t=200 is predicted; the t=200 job's
        # own wait is never observed — nothing is submitted after it.
        jobs = [
            Job(submit_time=0.0, wait=150.0),
            Job(submit_time=100.0, wait=1.0),  # starts at 101
            Job(submit_time=200.0, wait=1.0),
        ]
        predictor = ConstantPredictor(1e9)
        replay_single(Trace(jobs=jobs), predictor, ReplayConfig(training_fraction=0.0))
        observed_waits = [wait for wait, _ in predictor.observed]
        assert observed_waits == [1.0, 150.0]

    def test_observation_order_is_start_time_order(self, rng):
        waits = rng.lognormal(3, 1, 300)
        trace = make_trace(waits, gap=10.0)
        predictor = ConstantPredictor(1e9)
        replay_single(trace, predictor)
        starts_in_observation_order = []
        by_wait = {}
        for job in trace:
            by_wait.setdefault(job.wait, []).append(job.start_time)
        for wait, _ in predictor.observed:
            starts_in_observation_order.append(by_wait[wait].pop(0))
        assert starts_in_observation_order == sorted(starts_in_observation_order)


class TestEpochSemantics:
    def test_bound_changes_only_at_epoch_boundaries(self):
        """With a huge epoch, the post-training bound never updates."""

        class CountingPredictor(ConstantPredictor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.refits = 0

            def _compute_bound(self):
                self.refits += 1
                return self.bound

        trace = make_trace([1.0] * 200, gap=10.0)  # spans 2000 s
        predictor = CountingPredictor(100.0)
        replay_single(trace, predictor, ReplayConfig(epoch=1e9))
        # One refit at the initial boundary, one at finish_training.
        assert predictor.refits <= 3

        fine = CountingPredictor(100.0)
        replay_single(make_trace([1.0] * 200, gap=10.0), fine, ReplayConfig(epoch=10.0))
        assert fine.refits > 50

    def test_epoch_zero_refits_every_event(self):
        class CountingPredictor(ConstantPredictor):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.refits = 0

            def _compute_bound(self):
                self.refits += 1
                return self.bound

        trace = make_trace([1.0] * 100, gap=10.0)
        predictor = CountingPredictor(100.0)
        replay_single(trace, predictor, ReplayConfig(epoch=0.0))
        assert predictor.refits >= 99


class TestMultiPredictor:
    def test_identical_streams(self, small_trace):
        """All predictors see the same events; results are per-predictor."""
        results = replay(
            small_trace,
            {"wide": ConstantPredictor(1e12), "zero": ConstantPredictor(0.0)},
        )
        assert results["wide"].fraction_correct == 1.0
        assert results["zero"].fraction_correct < 1.0
        assert results["wide"].n_evaluated == results["zero"].n_evaluated

    def test_real_predictor_integration(self, rng):
        waits = rng.lognormal(4, 1, 1500)
        trace = make_trace(waits, gap=120.0)
        result = replay_single(trace, BMBPPredictor())
        assert result.fraction_correct >= 0.94
        assert result.miss_threshold is not None


class TestSeries:
    def test_series_recording_with_window(self, rng):
        waits = rng.lognormal(3, 1, 500)
        trace = make_trace(waits, gap=100.0)  # spans 50_000 s
        config = ReplayConfig(record_series=True, series_window=(10_000.0, 20_000.0))
        result = replay_single(trace, BMBPPredictor(), config)
        times, values = result.series
        assert times.size > 0
        assert np.all((times >= 10_000.0) & (times < 20_000.0))
        assert np.all(values > 0)

    def test_no_series_by_default(self, small_trace):
        result = replay_single(small_trace, ConstantPredictor(1.0))
        times, values = result.series
        assert times.size == 0


class TestConfigValidation:
    def test_bad_epoch(self):
        with pytest.raises(ValueError):
            ReplayConfig(epoch=-1.0)

    def test_bad_training_fraction(self):
        with pytest.raises(ValueError):
            ReplayConfig(training_fraction=1.0)
        with pytest.raises(ValueError):
            ReplayConfig(training_fraction=-0.1)
