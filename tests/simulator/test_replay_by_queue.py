"""Tests for multi-queue replay."""

import numpy as np
import pytest

from repro.core.bmbp import BMBPPredictor
from repro.simulator.replay import replay_by_queue
from repro.workloads.trace import Job, Trace


def multi_queue_trace(rng, per_queue=400):
    jobs = []
    for q, mu in (("fast", 2.0), ("slow", 6.0)):
        waits = rng.lognormal(mu, 0.8, per_queue)
        for i, wait in enumerate(waits):
            jobs.append(Job(submit_time=100.0 * i + (0.0 if q == "fast" else 50.0),
                            wait=float(wait), queue=q))
    # A tiny queue that should be skipped.
    jobs.append(Job(submit_time=1.0, wait=3.0, queue="rare"))
    return Trace(jobs=jobs, name="log")


def factory():
    return {"bmbp": BMBPPredictor()}


class TestReplayByQueue:
    def test_per_queue_results(self, rng):
        results = replay_by_queue(multi_queue_trace(rng), factory)
        assert set(results) == {"fast", "slow"}
        for queue in ("fast", "slow"):
            assert results[queue]["bmbp"].n_evaluated > 300

    def test_min_jobs_filter(self, rng):
        results = replay_by_queue(multi_queue_trace(rng), factory, min_jobs=1)
        assert "rare" in results

    def test_queues_are_independent(self, rng):
        results = replay_by_queue(multi_queue_trace(rng), factory)
        fast = results["fast"]["bmbp"]
        slow = results["slow"]["bmbp"]
        # Bound magnitudes reflect each queue's own level (e^2 vs e^6 body):
        # compare through the accuracy ratio against dedicated replays.
        assert fast.fraction_correct >= 0.93
        assert slow.fraction_correct >= 0.93
        assert fast.trace_name != slow.trace_name

    def test_fresh_predictors_per_queue(self, rng):
        calls = []

        def counting_factory():
            calls.append(1)
            return {"bmbp": BMBPPredictor()}

        replay_by_queue(multi_queue_trace(rng), counting_factory)
        assert len(calls) == 2
