"""Tests for replay result containers."""

import math

import numpy as np
import pytest

from repro.simulator.results import JobRecord, ReplayResult


def make_result(**kwargs):
    defaults = dict(
        trace_name="t", predictor_name="p", quantile=0.95, confidence=0.95
    )
    defaults.update(kwargs)
    return ReplayResult(**defaults)


class TestMetrics:
    def test_fraction_correct(self):
        result = make_result()
        for correct in [True, True, True, False]:
            result.record_outcome(0.5, correct)
        assert result.fraction_correct == 0.75
        assert result.n_evaluated == 4
        assert result.n_correct == 3

    def test_fraction_nan_when_empty(self):
        assert math.isnan(make_result().fraction_correct)

    def test_correct_flag_uses_quantile_threshold(self):
        result = make_result(quantile=0.75)
        for correct in [True, True, True, False]:
            result.record_outcome(0.1, correct)
        assert result.correct  # 0.75 >= 0.75

        result2 = make_result(quantile=0.95)
        for correct in [True, True, True, False]:
            result2.record_outcome(0.1, correct)
        assert not result2.correct

    def test_median_ratio_filters_infinities(self):
        result = make_result()
        result.record_outcome(0.5, True)
        result.record_outcome(math.inf, False)
        result.record_outcome(0.7, True)
        assert result.median_ratio == pytest.approx(0.6)

    def test_median_ratio_nan_when_all_infinite(self):
        result = make_result()
        result.record_outcome(math.inf, False)
        assert math.isnan(result.median_ratio)

    def test_series_arrays(self):
        result = make_result()
        result.series_times.extend([1.0, 2.0])
        result.series_values.extend([10.0, 20.0])
        times, values = result.series
        assert isinstance(times, np.ndarray)
        assert list(values) == [10.0, 20.0]

    def test_repr_is_compact(self):
        result = make_result()
        result.record_outcome(0.5, True)
        text = repr(result)
        assert "t" in text and "n=1" in text


class TestJobRecord:
    def test_fields(self):
        record = JobRecord(
            submit_time=1.0, predicted=10.0, actual=5.0, correct=True, procs=8
        )
        assert record.procs == 8
        assert record.correct
