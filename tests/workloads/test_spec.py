"""Tests for the Table 1 registry."""

import pytest

from repro.workloads.spec import (
    NOTRIM_FAIL_QUEUES,
    QUEUE_SPECS,
    TRIM_FAIL_QUEUES,
    spec_for,
    specs_for_machine,
)


class TestRegistryShape:
    def test_has_all_39_rows(self):
        assert len(QUEUE_SPECS) == 39

    def test_total_job_count_matches_paper(self):
        # "This collection of data comprises 1.26 million jobs."
        total = sum(spec.job_count for spec in QUEUE_SPECS)
        assert total == pytest.approx(1.26e6, rel=0.02)

    def test_table3_has_32_rows(self):
        assert sum(spec.in_table3 for spec in QUEUE_SPECS) == 32

    def test_keys_are_unique(self):
        keys = [spec.key for spec in QUEUE_SPECS]
        assert len(set(keys)) == len(keys)

    def test_seven_machines(self):
        machines = {spec.machine for spec in QUEUE_SPECS}
        assert machines == {
            "datastar", "lanl", "llnl", "nersc", "paragon", "sdsc", "tacc2"
        }

    def test_heavy_tails_dominate(self):
        # The paper: "it is clear that the distribution ... is heavy-tailed:
        # in each case the median is significantly less than the average"
        # (one near-symmetric exception: lanl/schammpq).
        heavier = sum(spec.mean > spec.median for spec in QUEUE_SPECS)
        assert heavier >= 38


class TestSpotChecks:
    def test_datastar_normal_row(self):
        spec = spec_for("datastar", "normal")
        assert spec.job_count == 48543
        assert spec.mean == 35886
        assert spec.median == 1795
        assert spec.std == 100255
        assert spec.site == "SDSC"

    def test_llnl_single_queue(self):
        specs = specs_for_machine("llnl")
        assert len(specs) == 1
        assert specs[0].queue == "all"

    def test_duration_parsing(self):
        assert spec_for("datastar", "normal").duration_months == 12
        assert spec_for("nersc", "regular").duration_months == 24
        assert spec_for("paragon", "q11").duration_months == 12
        # Two-digit 90s years resolve to the 1990s.
        assert spec_for("paragon", "q11").period == ("1/95", "1/96")

    def test_arrival_rate(self):
        spec = spec_for("tacc2", "normal")
        rate = spec.arrival_rate
        assert rate == pytest.approx(356487 / spec.duration_seconds)

    def test_unknown_queue_raises(self):
        with pytest.raises(KeyError):
            spec_for("datastar", "nonexistent")
        with pytest.raises(KeyError):
            specs_for_machine("bluegene")


class TestResultsMetadata:
    def test_failure_sets_reference_real_queues(self):
        keys = {spec.key for spec in QUEUE_SPECS}
        assert NOTRIM_FAIL_QUEUES <= keys
        assert TRIM_FAIL_QUEUES <= keys

    def test_trim_failures_are_a_subset_of_notrim_failures(self):
        # If the trimmed variant failed, the untrimmed one failed too
        # (Table 3's asterisk pattern).
        assert TRIM_FAIL_QUEUES <= NOTRIM_FAIL_QUEUES

    def test_bin_presence_only_for_table5_queues(self):
        # Paragon has no Table 5 rows (no usable processor counts).
        for spec in specs_for_machine("paragon"):
            assert spec.table5_bins is None
        # datastar/normal appears with bins 1-4, 5-16, 17-64.
        assert spec_for("datastar", "normal").table5_bins == (True, True, True, False)

    def test_table5_row_count_matches_paper(self):
        # Table 5 has 27 machine/queue rows.
        with_bins = [s for s in QUEUE_SPECS if s.table5_bins is not None]
        assert len(with_bins) == 27
