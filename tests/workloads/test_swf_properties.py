"""Property-based round-trip tests for the SWF reader/writer.

SWF is the interchange point with the real Parallel Workloads Archive
logs, so parse -> write -> parse must be the identity (at the format's
one-second integer time resolution) for *any* trace the generator or a
user can produce — arbitrary queue names, gaps, processor counts, missing
runtimes, gzip or plain.  A second write must also be byte-identical:
that is what makes committed ``tests/golden/*.swf`` fixtures stable.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.swf import load_swf, parse_swf_line, write_swf
from repro.workloads.trace import Job, Trace

QUEUE_NAMES = st.sampled_from(["normal", "batch", "q-high", "shared", ""])

JOBS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3600),  # inter-arrival gap (s)
        st.integers(min_value=0, max_value=10**6),  # wait (s)
        st.integers(min_value=1, max_value=4096),  # procs
        QUEUE_NAMES,
        st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),  # runtime
    ),
    min_size=1,
    max_size=30,
)


def build_trace(rows) -> Trace:
    jobs, submit = [], 0
    for gap, wait, procs, queue, runtime in rows:
        submit += gap
        jobs.append(
            Job(
                submit_time=float(submit),
                wait=float(wait),
                procs=procs,
                queue=queue,
                runtime=float(runtime) if runtime is not None else None,
            )
        )
    return Trace(jobs=jobs, name="prop")


def job_key(job: Job):
    return (job.submit_time, job.wait, job.procs, job.queue, job.runtime)


class TestRoundTrip:
    @given(rows=JOBS)
    @settings(max_examples=150, deadline=None)
    def test_write_load_write_load_is_stable(self, rows, tmp_path_factory):
        """After one write/load, further round trips are the exact identity."""
        tmp = tmp_path_factory.mktemp("swf")
        trace = build_trace(rows)
        write_swf(trace, tmp / "a.swf")
        once = load_swf(tmp / "a.swf")
        write_swf(once, tmp / "b.swf")
        twice = load_swf(tmp / "b.swf")
        assert [job_key(j) for j in twice] == [job_key(j) for j in once]
        # Times survived at integer resolution relative to the log start.
        base = trace[0].submit_time
        assert [j.submit_time for j in once] == [
            float(int(j.submit_time - base)) for j in trace
        ]
        assert [j.wait for j in once] == [float(int(j.wait)) for j in trace]
        assert [j.procs for j in once] == [j.procs for j in trace]

    @given(rows=JOBS)
    @settings(max_examples=100, deadline=None)
    def test_queue_names_restore_through_explicit_numbering(
        self, rows, tmp_path_factory
    ):
        """With an explicit queue mapping the full round trip is lossless
        (names included) and a rewrite is byte-identical."""
        tmp = tmp_path_factory.mktemp("swf")
        trace = build_trace(rows)
        numbering, nxt = {}, 1
        for job in trace:
            if job.queue and job.queue not in numbering:
                numbering[job.queue] = nxt
                nxt += 1
        write_swf(trace, tmp / "a.swf", queue_numbers=numbering)
        names = {num: name for name, num in numbering.items()}
        loaded = load_swf(tmp / "a.swf", queue_names=names)
        assert [j.queue for j in loaded] == [j.queue for j in trace]
        write_swf(loaded, tmp / "b.swf", queue_numbers=numbering)
        assert (tmp / "a.swf").read_bytes() == (tmp / "b.swf").read_bytes()

    @given(rows=JOBS)
    @settings(max_examples=30, deadline=None)
    def test_gzip_equals_plain(self, rows, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("swf")
        trace = build_trace(rows)
        write_swf(trace, tmp / "t.swf")
        write_swf(trace, tmp / "t.swf.gz")
        plain = load_swf(tmp / "t.swf")
        gzipped = load_swf(tmp / "t.swf.gz")
        assert [job_key(j) for j in gzipped] == [job_key(j) for j in plain]


class TestParserTotality:
    @given(line=st.text(max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_any_text_line_parses_skips_or_raises_value_error(self, line):
        """No input text can crash the parser with anything unexpected."""
        try:
            job = parse_swf_line(line)
        except ValueError:
            return  # malformed record: the documented loud failure
        assert job is None or isinstance(job, Job)

    def test_comments_blanks_and_negative_records_are_skipped(self):
        assert parse_swf_line("; a header comment") is None
        assert parse_swf_line("   ") is None
        # Submit or wait of -1 (SWF's 'missing') drops the record silently.
        record = "1 -1 5 10 4 -1 -1 4 -1 -1 1 -1 -1 -1 1 -1 -1 -1"
        assert parse_swf_line(record) is None

    def test_short_record_fails_loudly(self):
        with pytest.raises(ValueError, match="fields"):
            parse_swf_line("1 2 3")
