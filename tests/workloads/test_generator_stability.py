"""Seed stability of the synthetic generator across processes and engines.

The replay cache, the golden fixtures, and every seeded experiment assume
``generate_queue_trace(spec, config)`` is a pure function of (spec, seed):
the same stream bit-for-bit in this process, in a fresh interpreter, and
whether the experiment engine runs serially or through the worker pool.
A platform- or process-dependent RNG path would silently invalidate all
cached results; this file is the tripwire.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

import repro
from repro import runtime
from repro.runtime.engine import Task
from repro.workloads.generator import GeneratorConfig, generate_queue_trace
from repro.workloads.spec import spec_for

CONFIG = GeneratorConfig(scale=0.1, seed=11, min_jobs=400)
PAIRS = [("nersc", "interactive"), ("datastar", "normal")]


def trace_digest(machine: str, queue: str) -> str:
    """Canonical content hash of one generated trace (all job fields)."""
    trace = generate_queue_trace(spec_for(machine, queue), CONFIG)
    h = hashlib.sha256()
    h.update(np.asarray([j.submit_time for j in trace], dtype=np.float64).tobytes())
    h.update(np.asarray([j.wait for j in trace], dtype=np.float64).tobytes())
    h.update(np.asarray([j.procs for j in trace], dtype=np.int64).tobytes())
    h.update("|".join(j.queue for j in trace).encode("utf-8"))
    return h.hexdigest()


class TestSeedStability:
    def test_same_process_repeatability(self):
        for machine, queue in PAIRS:
            assert trace_digest(machine, queue) == trace_digest(machine, queue)

    def test_seed_actually_matters(self):
        spec = spec_for(*PAIRS[0])
        a = generate_queue_trace(spec, CONFIG)
        b = generate_queue_trace(
            spec, GeneratorConfig(scale=0.1, seed=12, min_jobs=400)
        )
        assert [j.wait for j in a] != [j.wait for j in b]

    def test_fresh_interpreter_reproduces_the_stream(self):
        """A restarted process (new hash seed, new imports) must agree."""
        machine, queue = PAIRS[0]
        code = (
            "import hashlib, numpy as np\n"
            "from repro.workloads.generator import GeneratorConfig, generate_queue_trace\n"
            "from repro.workloads.spec import spec_for\n"
            f"trace = generate_queue_trace(spec_for({machine!r}, {queue!r}), "
            "GeneratorConfig(scale=0.1, seed=11, min_jobs=400))\n"
            "h = hashlib.sha256()\n"
            "h.update(np.asarray([j.submit_time for j in trace], dtype=np.float64).tobytes())\n"
            "h.update(np.asarray([j.wait for j in trace], dtype=np.float64).tobytes())\n"
            "h.update(np.asarray([j.procs for j in trace], dtype=np.int64).tobytes())\n"
            "h.update('|'.join(j.queue for j in trace).encode('utf-8'))\n"
            "print(h.hexdigest())\n"
        )
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == trace_digest(machine, queue)

    def test_serial_and_parallel_engine_runs_agree(self):
        """--jobs must not change the streams (fresh RNG per trace, no
        shared-state bleed between pool workers)."""
        tasks = [
            Task(func=trace_digest, args=pair, label=f"gen-{pair[0]}-{pair[1]}",
                 cache=False)
            for pair in PAIRS
        ]
        serial = runtime.run_tasks(tasks, jobs=1, cache=False)
        parallel = runtime.run_tasks(tasks, jobs=2, cache=False)
        assert serial == parallel == [trace_digest(*pair) for pair in PAIRS]
