"""Tests for the Standard Workload Format parser."""

import gzip

import pytest

from repro.workloads.swf import iter_swf, load_swf, parse_swf_line, write_swf


def swf_record(
    job=1, submit=1000, wait=50, runtime=300, alloc=8, requested=16, queue=2
):
    """A syntactically valid 18-field SWF line."""
    fields = [job, submit, wait, runtime, alloc, 95, -1, requested, 3600, -1,
              1, 101, 5, 7, queue, 1, -1, -1]
    return " ".join(str(f) for f in fields)


class TestParseLine:
    def test_basic_record(self):
        job = parse_swf_line(swf_record())
        assert job.submit_time == 1000.0
        assert job.wait == 50.0
        assert job.procs == 16  # requested preferred over allocated
        assert job.queue == "2"
        assert job.runtime == 300.0

    def test_falls_back_to_allocated_procs(self):
        job = parse_swf_line(swf_record(requested=-1, alloc=8))
        assert job.procs == 8

    def test_procs_floor_of_one(self):
        job = parse_swf_line(swf_record(requested=-1, alloc=-1))
        assert job.procs == 1

    def test_comments_and_blanks_return_none(self):
        assert parse_swf_line("; MaxJobs: 100") is None
        assert parse_swf_line("") is None
        assert parse_swf_line("   \n") is None

    def test_missing_wait_or_submit_skipped(self):
        assert parse_swf_line(swf_record(wait=-1)) is None
        assert parse_swf_line(swf_record(submit=-1)) is None

    def test_negative_runtime_becomes_none(self):
        job = parse_swf_line(swf_record(runtime=-1))
        assert job.runtime is None

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_swf_line("1 2 3")  # too few fields
        with pytest.raises(ValueError):
            parse_swf_line(swf_record().replace("1000", "abc"))

    def test_missing_queue_number(self):
        job = parse_swf_line(swf_record(queue=-1))
        assert job.queue == ""

    def test_partial_record_tolerated(self):
        # Interactive/killed jobs truncated after the fields the scheduler
        # knew: status -1, think time and queue never written.
        job = parse_swf_line("7 1000 45 120 4")
        assert job is not None
        assert job.submit_time == 1000.0
        assert job.wait == 45.0
        assert job.procs == 4
        assert job.queue == ""  # missing tail reads as -1

    def test_partial_record_with_status_minus_one(self):
        line = "7 1000 45 120 4 -1 -1 4 240 -1 -1 1 1 -1 2"  # 15 fields
        job = parse_swf_line(line)
        assert job is not None
        assert job.queue == "2"


class TestLoadFile:
    def _write(self, path, lines, compress=False):
        data = "\n".join(lines) + "\n"
        if compress:
            with gzip.open(path, "wt") as handle:
                handle.write(data)
        else:
            path.write_text(data)

    def test_load_plain_file(self, tmp_path):
        path = tmp_path / "log.swf"
        self._write(
            path,
            ["; header comment", swf_record(job=1, submit=100),
             swf_record(job=2, submit=50)],
        )
        trace = load_swf(path)
        assert len(trace) == 2
        assert trace.name == "log"
        # Sorted by submit time.
        assert trace[0].submit_time == 50.0

    def test_load_gzip(self, tmp_path):
        path = tmp_path / "log.swf.gz"
        self._write(path, [swf_record()], compress=True)
        trace = load_swf(path)
        assert len(trace) == 1

    def test_queue_name_mapping(self, tmp_path):
        path = tmp_path / "log.swf"
        self._write(path, [swf_record(queue=2), swf_record(queue=5)])
        trace = load_swf(path, queue_names={2: "normal"})
        queues = sorted(trace.queues())
        assert "normal" in queues
        assert "5" in queues  # unmapped numbers keep their string form

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "x.swf"
        self._write(path, [swf_record()])
        assert load_swf(path, name="sdsc-sp2").name == "sdsc-sp2"

    def test_iter_swf_streams_gzip(self, tmp_path):
        path = tmp_path / "log.swf.gz"
        self._write(
            path,
            [swf_record(job=i, submit=100 * i) for i in range(1, 6)],
            compress=True,
        )
        jobs = list(iter_swf(path))
        assert len(jobs) == 5
        assert jobs[0].submit_time == 100.0

    def test_partial_records_survive_load(self, tmp_path):
        path = tmp_path / "log.swf"
        self._write(path, [swf_record(), "9 2000 30 60 2"])
        trace = load_swf(path)
        assert len(trace) == 2

    def test_write_swf_streams_and_round_trips(self, tmp_path):
        trace = load_swf(self._sample(tmp_path))
        for suffix in (".swf", ".swf.gz"):
            out = tmp_path / f"out{suffix}"
            write_swf(trace, out)
            again = load_swf(out)
            assert len(again) == len(trace)
            assert [j.wait for j in again] == [j.wait for j in trace]

    def _sample(self, tmp_path):
        path = tmp_path / "sample.swf"
        self._write(
            path, [swf_record(job=i, submit=10 * i) for i in range(1, 8)]
        )
        return path
