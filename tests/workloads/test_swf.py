"""Tests for the Standard Workload Format parser."""

import gzip

import pytest

from repro.workloads.swf import load_swf, parse_swf_line


def swf_record(
    job=1, submit=1000, wait=50, runtime=300, alloc=8, requested=16, queue=2
):
    """A syntactically valid 18-field SWF line."""
    fields = [job, submit, wait, runtime, alloc, 95, -1, requested, 3600, -1,
              1, 101, 5, 7, queue, 1, -1, -1]
    return " ".join(str(f) for f in fields)


class TestParseLine:
    def test_basic_record(self):
        job = parse_swf_line(swf_record())
        assert job.submit_time == 1000.0
        assert job.wait == 50.0
        assert job.procs == 16  # requested preferred over allocated
        assert job.queue == "2"
        assert job.runtime == 300.0

    def test_falls_back_to_allocated_procs(self):
        job = parse_swf_line(swf_record(requested=-1, alloc=8))
        assert job.procs == 8

    def test_procs_floor_of_one(self):
        job = parse_swf_line(swf_record(requested=-1, alloc=-1))
        assert job.procs == 1

    def test_comments_and_blanks_return_none(self):
        assert parse_swf_line("; MaxJobs: 100") is None
        assert parse_swf_line("") is None
        assert parse_swf_line("   \n") is None

    def test_missing_wait_or_submit_skipped(self):
        assert parse_swf_line(swf_record(wait=-1)) is None
        assert parse_swf_line(swf_record(submit=-1)) is None

    def test_negative_runtime_becomes_none(self):
        job = parse_swf_line(swf_record(runtime=-1))
        assert job.runtime is None

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_swf_line("1 2 3")  # too few fields
        with pytest.raises(ValueError):
            parse_swf_line(swf_record().replace("1000", "abc"))

    def test_missing_queue_number(self):
        job = parse_swf_line(swf_record(queue=-1))
        assert job.queue == ""


class TestLoadFile:
    def _write(self, path, lines, compress=False):
        data = "\n".join(lines) + "\n"
        if compress:
            with gzip.open(path, "wt") as handle:
                handle.write(data)
        else:
            path.write_text(data)

    def test_load_plain_file(self, tmp_path):
        path = tmp_path / "log.swf"
        self._write(
            path,
            ["; header comment", swf_record(job=1, submit=100),
             swf_record(job=2, submit=50)],
        )
        trace = load_swf(path)
        assert len(trace) == 2
        assert trace.name == "log"
        # Sorted by submit time.
        assert trace[0].submit_time == 50.0

    def test_load_gzip(self, tmp_path):
        path = tmp_path / "log.swf.gz"
        self._write(path, [swf_record()], compress=True)
        trace = load_swf(path)
        assert len(trace) == 1

    def test_queue_name_mapping(self, tmp_path):
        path = tmp_path / "log.swf"
        self._write(path, [swf_record(queue=2), swf_record(queue=5)])
        trace = load_swf(path, queue_names={2: "normal"})
        queues = sorted(trace.queues())
        assert "normal" in queues
        assert "5" in queues  # unmapped numbers keep their string form

    def test_explicit_name(self, tmp_path):
        path = tmp_path / "x.swf"
        self._write(path, [swf_record()])
        assert load_swf(path, name="sdsc-sp2").name == "sdsc-sp2"
