"""Tests for the archive-log registry."""

import dataclasses
import gzip

import pytest

from repro.workloads.archive import (
    ARCHIVE_LOGS,
    archive_log,
    describe_archive,
    file_sha256,
    load_archive_log,
    verify_archive_file,
)
from repro.workloads.spec import specs_for_machine
from repro.workloads.swf import write_swf
from repro.workloads.trace import Job, Trace


class TestRegistry:
    def test_keys_unique(self):
        keys = [log.key for log in ARCHIVE_LOGS]
        assert len(set(keys)) == len(keys)

    def test_lookup(self):
        log = archive_log("sdsc-sp2")
        assert log.procs == 128
        assert log.queue_names[3] == "normal"

    def test_unknown_key(self):
        with pytest.raises(KeyError) as excinfo:
            archive_log("bluegene")
        assert "known:" in str(excinfo.value)

    def test_paper_overlaps_reference_real_machines(self):
        for log in ARCHIVE_LOGS:
            if log.paper_overlap is not None:
                assert specs_for_machine(log.paper_overlap)

    def test_sdsc_sp2_queue_names_match_table1(self):
        # The archive's SDSC SP2 queues are the paper's sdsc/* queue names.
        log = archive_log("sdsc-sp2")
        paper_queues = {spec.queue for spec in specs_for_machine("sdsc")}
        assert set(log.queue_names.values()) == paper_queues

    def test_describe(self):
        text = describe_archive()
        assert "sdsc-sp2" in text
        assert "Paragon" in text

    def test_every_log_has_download_url(self):
        for log in ARCHIVE_LOGS:
            assert log.url and log.url.startswith("https://")
            assert log.url.endswith(log.filename)

    def test_describe_lists_urls(self):
        text = describe_archive()
        assert archive_log("sdsc-sp2").url in text


class TestLoading:
    def _fake_log(self, tmp_path, filename):
        trace = Trace(
            jobs=[
                Job(submit_time=0.0, wait=10.0, procs=4, queue="3"),
                Job(submit_time=60.0, wait=5.0, procs=8, queue="1"),
            ]
        )
        path = tmp_path / filename
        # Write with queue numbers as names 3 and 1.
        write_swf(trace, path, queue_numbers={"3": 3, "1": 1})
        return path

    def test_load_by_file(self, tmp_path):
        path = self._fake_log(tmp_path, "anything.swf")
        trace = load_archive_log("sdsc-sp2", path)
        assert len(trace) == 2
        # Numbers mapped to the registered names.
        assert set(trace.queues()) == {"normal", "express"}
        assert trace.name == "sdsc-sp2"

    def test_load_by_directory(self, tmp_path):
        log = archive_log("sdsc-sp2")
        # The registry expects a .gz name; write it compressed.
        self._fake_log(tmp_path, log.filename)
        trace = load_archive_log("sdsc-sp2", tmp_path)
        assert len(trace) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            load_archive_log("sdsc-sp2", tmp_path / "nope.swf")
        assert "Parallel Workloads Archive" in str(excinfo.value)


class TestVerify:
    def _write_log(self, tmp_path, filename, header_lines, records=1):
        lines = list(header_lines)
        for i in range(1, records + 1):
            lines.append(f"{i} {100 * i} 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1")
        data = ("\n".join(lines) + "\n").encode()
        path = tmp_path / filename
        if filename.endswith(".gz"):
            with gzip.open(path, "wb") as fh:
                fh.write(data)
        else:
            path.write_bytes(data)
        return path

    def test_unpinned_reports_digest(self, tmp_path):
        log = archive_log("sdsc-sp2")
        path = self._write_log(
            tmp_path, log.filename,
            [f"; MaxProcs: {log.procs}", "; Queue: 3 normal"],
        )
        report = verify_archive_file(path)
        assert report["key"] == "sdsc-sp2"
        assert report["checksum"] == "unpinned"
        assert report["sha256"] == file_sha256(path)
        assert report["ok"]
        assert any("pinned" in w for w in report["warnings"])

    def test_header_mismatch_warns_not_fails(self, tmp_path):
        log = archive_log("sdsc-sp2")
        path = self._write_log(
            tmp_path, log.filename,
            ["; MaxProcs: 999", "; Queue: 3 weird-name"],
        )
        report = verify_archive_file(path, key="sdsc-sp2")
        assert report["ok"]  # warnings, not a hard failure
        joined = " ".join(report["warnings"])
        assert "MaxProcs 999" in joined
        assert "weird-name" in joined

    def test_pinned_checksum_mismatch_fails(self, tmp_path):
        log = archive_log("sdsc-sp2")
        pinned = dataclasses.replace(log, sha256="0" * 64)
        path = self._write_log(tmp_path, log.filename, [])
        import repro.workloads.archive as archive_mod

        orig = archive_mod._BY_KEY["sdsc-sp2"]
        archive_mod._BY_KEY["sdsc-sp2"] = pinned
        try:
            report = verify_archive_file(path, key="sdsc-sp2")
        finally:
            archive_mod._BY_KEY["sdsc-sp2"] = orig
        assert report["checksum"] == "mismatch"
        assert not report["ok"]

    def test_unregistered_file_header_only(self, tmp_path):
        path = self._write_log(tmp_path, "mystery.swf", ["; MaxProcs: 64"])
        report = verify_archive_file(path)
        assert report["key"] is None
        assert report["ok"]
        assert report["header"]["max_procs"] == 64
