"""Tests for the archive-log registry."""

import pytest

from repro.workloads.archive import (
    ARCHIVE_LOGS,
    archive_log,
    describe_archive,
    load_archive_log,
)
from repro.workloads.spec import specs_for_machine
from repro.workloads.swf import write_swf
from repro.workloads.trace import Job, Trace


class TestRegistry:
    def test_keys_unique(self):
        keys = [log.key for log in ARCHIVE_LOGS]
        assert len(set(keys)) == len(keys)

    def test_lookup(self):
        log = archive_log("sdsc-sp2")
        assert log.procs == 128
        assert log.queue_names[3] == "normal"

    def test_unknown_key(self):
        with pytest.raises(KeyError) as excinfo:
            archive_log("bluegene")
        assert "known:" in str(excinfo.value)

    def test_paper_overlaps_reference_real_machines(self):
        for log in ARCHIVE_LOGS:
            if log.paper_overlap is not None:
                assert specs_for_machine(log.paper_overlap)

    def test_sdsc_sp2_queue_names_match_table1(self):
        # The archive's SDSC SP2 queues are the paper's sdsc/* queue names.
        log = archive_log("sdsc-sp2")
        paper_queues = {spec.queue for spec in specs_for_machine("sdsc")}
        assert set(log.queue_names.values()) == paper_queues

    def test_describe(self):
        text = describe_archive()
        assert "sdsc-sp2" in text
        assert "Paragon" in text


class TestLoading:
    def _fake_log(self, tmp_path, filename):
        trace = Trace(
            jobs=[
                Job(submit_time=0.0, wait=10.0, procs=4, queue="3"),
                Job(submit_time=60.0, wait=5.0, procs=8, queue="1"),
            ]
        )
        path = tmp_path / filename
        # Write with queue numbers as names 3 and 1.
        write_swf(trace, path, queue_numbers={"3": 3, "1": 1})
        return path

    def test_load_by_file(self, tmp_path):
        path = self._fake_log(tmp_path, "anything.swf")
        trace = load_archive_log("sdsc-sp2", path)
        assert len(trace) == 2
        # Numbers mapped to the registered names.
        assert set(trace.queues()) == {"normal", "express"}
        assert trace.name == "sdsc-sp2"

    def test_load_by_directory(self, tmp_path):
        log = archive_log("sdsc-sp2")
        # The registry expects a .gz name; write it compressed.
        self._fake_log(tmp_path, log.filename)
        trace = load_archive_log("sdsc-sp2", tmp_path)
        assert len(trace) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            load_archive_log("sdsc-sp2", tmp_path / "nope.swf")
        assert "Parallel Workloads Archive" in str(excinfo.value)
