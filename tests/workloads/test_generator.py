"""Tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.workloads.bins import partition_by_bin
from repro.workloads.generator import (
    GeneratorConfig,
    _recalibrate,
    generate_queue_trace,
    generate_site_traces,
)
from repro.workloads.spec import QUEUE_SPECS, spec_for


SMALL = GeneratorConfig(scale=0.1, seed=11, min_jobs=400)


class TestCalibration:
    @pytest.mark.parametrize(
        "machine, queue",
        [
            ("datastar", "normal"),
            ("nersc", "interactive"),
            ("tacc2", "normal"),
            ("nersc", "regularlong"),
            ("lanl", "chammpq"),
        ],
    )
    def test_mean_and_median_match_table1(self, machine, queue):
        spec = spec_for(machine, queue)
        summary = generate_queue_trace(spec, SMALL).summary()
        assert summary.mean == pytest.approx(spec.mean, rel=0.02)
        assert summary.median == pytest.approx(spec.median, rel=0.05, abs=2.0)

    def test_job_count_scales(self):
        spec = spec_for("tacc2", "normal")  # 356487 jobs
        for scale in (0.01, 0.05):
            trace = generate_queue_trace(
                spec, GeneratorConfig(scale=scale, seed=1, min_jobs=400)
            )
            assert len(trace) == int(round(spec.job_count * scale))

    def test_min_jobs_floor(self):
        spec = spec_for("lanl", "schammpq")  # 1386 jobs
        trace = generate_queue_trace(
            spec, GeneratorConfig(scale=0.01, seed=1, min_jobs=800)
        )
        assert len(trace) == 800

    def test_arrivals_span_the_trace_period(self):
        spec = spec_for("datastar", "normal")
        trace = generate_queue_trace(spec, SMALL)
        assert trace.duration == pytest.approx(spec.duration_seconds, rel=0.02)

    def test_waits_are_non_negative(self):
        for key in [("nersc", "interactive"), ("lanl", "shared")]:
            trace = generate_queue_trace(spec_for(*key), SMALL)
            assert trace.waits.min() >= 0.0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = spec_for("sdsc", "express")
        a = generate_queue_trace(spec, SMALL)
        b = generate_queue_trace(spec, SMALL)
        assert np.array_equal(a.waits, b.waits)
        assert np.array_equal(a.submit_times, b.submit_times)
        assert np.array_equal(a.procs, b.procs)

    def test_different_seeds_differ(self):
        spec = spec_for("sdsc", "express")
        a = generate_queue_trace(spec, GeneratorConfig(scale=0.1, seed=1, min_jobs=400))
        b = generate_queue_trace(spec, GeneratorConfig(scale=0.1, seed=2, min_jobs=400))
        assert not np.array_equal(a.waits, b.waits)

    def test_queues_have_independent_streams(self):
        a = generate_queue_trace(spec_for("sdsc", "low"), SMALL)
        b = generate_queue_trace(spec_for("sdsc", "high"), SMALL)
        n = min(len(a), len(b))
        assert not np.array_equal(a.waits[:n], b.waits[:n])


class TestBinStructure:
    def test_present_bins_exceed_prorated_threshold(self):
        spec = spec_for("datastar", "normal")  # bins 1-4, 5-16, 17-64
        trace = generate_queue_trace(spec, SMALL)
        parts = partition_by_bin(trace)
        threshold = 1000 * 0.1
        assert len(parts["1-4"]) >= threshold
        assert len(parts["5-16"]) >= threshold
        assert len(parts["17-64"]) >= threshold
        assert len(parts["65+"]) < threshold  # the "-" cell

    def test_single_bin_queue(self):
        spec = spec_for("tacc2", "serial")  # only 1-4 present
        trace = generate_queue_trace(spec, SMALL)
        parts = partition_by_bin(trace)
        threshold = 1000 * 0.1
        assert len(parts["1-4"]) >= threshold
        for label in ("5-16", "17-64", "65+"):
            assert len(parts[label]) < threshold


class TestPathologies:
    def test_lanl_short_end_surge(self):
        spec = spec_for("lanl", "short")
        trace = generate_queue_trace(spec, SMALL)
        end_of_log = trace.submit_times[-1]
        unseen = sum(job.start_time > end_of_log for job in trace)
        # ~8% of jobs should start after the log ends.
        assert 0.04 * len(trace) <= unseen <= 0.12 * len(trace)

    def test_end_surge_can_be_disabled(self):
        spec = spec_for("lanl", "short")
        config = GeneratorConfig(scale=0.1, seed=11, min_jobs=400, end_surge=False)
        trace = generate_queue_trace(spec, config)
        end_of_log = trace.submit_times[-1]
        unseen = sum(job.start_time > end_of_log for job in trace)
        assert unseen < 0.04 * len(trace)

    def test_figure2_regime_favors_large_jobs_in_june(self):
        trace = generate_queue_trace(spec_for("datastar", "normal"), SMALL)
        from repro.workloads.spec import SECONDS_PER_MONTH, _month_index

        june = _month_index("6/04") * SECONDS_PER_MONTH
        window = trace.time_slice(june, june + 30 * 86400.0)
        small = [j.wait for j in window if j.procs <= 4]
        large = [j.wait for j in window if 17 <= j.procs <= 64]
        assert len(small) > 20 and len(large) > 20
        assert np.median(large) < np.median(small)


class TestRecalibrate:
    def test_pins_median_and_mean(self, rng):
        spec = spec_for("datastar", "normal")
        raw = rng.normal(5.0, 2.0, size=5000)
        adjusted = _recalibrate(raw, spec, 1.0)
        waits = np.exp(adjusted) - 1.0
        assert float(np.median(waits)) == pytest.approx(spec.median, rel=0.01)
        assert float(np.mean(waits)) == pytest.approx(spec.mean, rel=0.01)

    def test_constant_input(self):
        spec = spec_for("datastar", "normal")
        adjusted = _recalibrate(np.full(100, 3.0), spec, 1.0)
        assert np.allclose(adjusted, np.log(spec.median + 1.0))

    def test_preserves_ordering(self, rng):
        spec = spec_for("nersc", "regular")
        raw = rng.normal(2.0, 1.0, size=1000)
        adjusted = _recalibrate(raw, spec, 1.0)
        # Monotone transform: order of values preserved.
        assert np.array_equal(np.argsort(raw), np.argsort(adjusted))


class TestSiteTraces:
    def test_generate_all_table3(self):
        config = GeneratorConfig(scale=0.002, seed=3, min_jobs=100)
        traces = generate_site_traces(config, table3_only=True)
        assert len(traces) == 32
        assert all(len(trace) >= 100 for trace in traces.values())

    def test_subset_of_specs(self):
        config = GeneratorConfig(scale=0.002, seed=3, min_jobs=100)
        subset = [spec_for("llnl", "all")]
        traces = generate_site_traces(config, specs=subset)
        assert set(traces) == {("llnl", "all")}


class TestConfigValidation:
    def test_bad_scale(self):
        with pytest.raises(ValueError):
            GeneratorConfig(scale=0.0)

    def test_bad_min_jobs(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_jobs=10)
