"""Tests for the SWF writer (round-trips with the parser)."""

import pytest

from repro.workloads.swf import format_swf_record, load_swf, parse_swf_line, write_swf
from repro.workloads.trace import Job, Trace


def sample_trace():
    return Trace(
        jobs=[
            Job(submit_time=1000.0, wait=50.0, procs=4, queue="normal", runtime=300.0),
            Job(submit_time=1100.0, wait=0.0, procs=16, queue="high", runtime=60.0),
            Job(submit_time=1300.0, wait=7.0, procs=1, queue="normal"),
        ],
        name="demo",
    )


class TestFormatRecord:
    def test_has_eighteen_fields(self):
        line = format_swf_record(1, sample_trace()[0], queue_number=3)
        assert len(line.split()) == 18

    def test_parses_back(self):
        job = sample_trace()[0]
        parsed = parse_swf_line(format_swf_record(7, job, queue_number=2))
        assert parsed.wait == 50.0
        assert parsed.procs == 4
        assert parsed.queue == "2"
        assert parsed.runtime == 300.0

    def test_base_time_offsets_submit(self):
        job = sample_trace()[0]
        parsed = parse_swf_line(format_swf_record(1, job, base_time=1000.0))
        assert parsed.submit_time == 0.0

    def test_missing_runtime_encoded_as_minus_one(self):
        job = sample_trace()[2]
        parsed = parse_swf_line(format_swf_record(1, job))
        assert parsed.runtime is None


class TestWriteSwf:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.swf"
        trace = sample_trace()
        write_swf(trace, path, queue_numbers={"normal": 1, "high": 2})
        loaded = load_swf(path, queue_names={1: "normal", 2: "high"})
        assert len(loaded) == len(trace)
        for original, restored in zip(trace, loaded):
            assert restored.wait == int(original.wait)
            assert restored.procs == original.procs
            assert restored.queue == original.queue

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "out.swf.gz"
        write_swf(sample_trace(), path)
        assert len(load_swf(path)) == 3

    def test_auto_queue_numbering(self, tmp_path):
        path = tmp_path / "auto.swf"
        write_swf(sample_trace(), path)
        content = path.read_text()
        assert "; Queues:" in content
        loaded = load_swf(path)
        assert sorted(set(j.queue for j in loaded)) == ["1", "2"]

    def test_header_comments(self, tmp_path):
        path = tmp_path / "hdr.swf"
        write_swf(sample_trace(), path, header_comments=["Machine: demo", "Note"])
        lines = path.read_text().splitlines()
        assert lines[0] == "; Machine: demo"
        assert lines[1] == "; Note"

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.swf"
        write_swf(Trace(jobs=[]), path)
        assert len(load_swf(path)) == 0
