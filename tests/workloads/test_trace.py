"""Tests for the Job/Trace containers."""

import numpy as np
import pytest

from repro.workloads.trace import Job, Trace


class TestJob:
    def test_start_time(self):
        job = Job(submit_time=100.0, wait=50.0)
        assert job.start_time == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Job(submit_time=0.0, wait=-1.0)
        with pytest.raises(ValueError):
            Job(submit_time=0.0, wait=0.0, procs=0)

    def test_with_queue(self):
        job = Job(submit_time=0.0, wait=1.0, queue="a")
        renamed = job.with_queue("b")
        assert renamed.queue == "b"
        assert job.queue == "a"  # original untouched (frozen)


class TestTrace:
    def test_sorts_by_submit_time(self):
        jobs = [
            Job(submit_time=30.0, wait=1.0),
            Job(submit_time=10.0, wait=2.0),
            Job(submit_time=20.0, wait=3.0),
        ]
        trace = Trace(jobs=jobs)
        assert list(trace.submit_times) == [10.0, 20.0, 30.0]
        assert list(trace.waits) == [2.0, 3.0, 1.0]

    def test_len_iter_getitem(self):
        trace = Trace(jobs=[Job(submit_time=float(i), wait=1.0) for i in range(5)])
        assert len(trace) == 5
        assert trace[0].submit_time == 0.0
        assert sum(1 for _ in trace) == 5

    def test_duration(self):
        trace = Trace(jobs=[Job(submit_time=10.0, wait=0.0), Job(submit_time=60.0, wait=0.0)])
        assert trace.duration == 50.0
        assert Trace(jobs=[Job(submit_time=5.0, wait=0.0)]).duration == 0.0

    def test_summary_matches_waits(self):
        trace = Trace(jobs=[Job(submit_time=float(i), wait=float(w)) for i, w in enumerate([1, 2, 3, 100])])
        summary = trace.summary()
        assert summary.count == 4
        assert summary.median == pytest.approx(2.5)

    def test_filter_and_by_queue(self):
        jobs = [
            Job(submit_time=0.0, wait=1.0, queue="a"),
            Job(submit_time=1.0, wait=2.0, queue="b"),
            Job(submit_time=2.0, wait=3.0, queue="a"),
        ]
        trace = Trace(jobs=jobs, name="t")
        assert len(trace.by_queue("a")) == 2
        assert trace.queues() == ["a", "b"]
        big = trace.filter(lambda job: job.wait > 1.5)
        assert len(big) == 2

    def test_time_slice(self):
        trace = Trace(jobs=[Job(submit_time=float(i), wait=0.0) for i in range(10)])
        sliced = trace.time_slice(3.0, 7.0)
        assert list(sliced.submit_times) == [3.0, 4.0, 5.0, 6.0]

    def test_from_arrays(self):
        trace = Trace.from_arrays([0.0, 10.0], [5.0, 6.0], procs=[2, 4], queue="q")
        assert trace[1].procs == 4
        assert trace[0].queue == "q"

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            Trace.from_arrays([0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            Trace.from_arrays([0.0], [1.0], procs=[1, 2])
        with pytest.raises(ValueError):
            Trace.from_arrays([0.0], [1.0], runtimes=[1.0, 2.0])

    def test_merge_resorts(self):
        a = Trace(jobs=[Job(submit_time=5.0, wait=0.0)])
        b = Trace(jobs=[Job(submit_time=1.0, wait=0.0)])
        merged = Trace.merge([a, b], name="m")
        assert list(merged.submit_times) == [1.0, 5.0]
        assert merged.name == "m"

    def test_arrays_dtypes(self):
        trace = Trace.from_arrays([0.0], [1.0], procs=[3])
        assert trace.procs.dtype.kind == "i"
        assert trace.waits.dtype == np.float64
