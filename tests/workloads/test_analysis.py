"""Tests for the trace/prediction diagnostics."""

import numpy as np
import pytest

from repro.core.bmbp import BMBPPredictor
from repro.simulator.replay import ReplayConfig, replay_single
from repro.workloads.analysis import (
    miss_run_stats,
    nonstationarity_score,
    rolling_coverage,
    rolling_median,
)
from repro.workloads.generator import GeneratorConfig, generate_queue_trace
from repro.workloads.spec import spec_for

from tests.conftest import make_trace


class TestRollingMedian:
    def test_constant_series(self):
        out = rolling_median([5.0] * 10, window=3)
        assert np.all(out == 5.0)

    def test_tracks_level_change(self):
        series = [1.0] * 50 + [100.0] * 50
        out = rolling_median(series, window=10)
        assert out[40] == 1.0
        assert out[99] == 100.0

    def test_partial_prefix(self):
        out = rolling_median([1.0, 3.0, 5.0], window=10)
        assert out[0] == 1.0
        assert out[1] == 2.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_median([1.0], window=0)


class TestMissRuns:
    def _result_with_misses(self, waits, bound):
        from repro.simulator.results import JobRecord, ReplayResult

        result = ReplayResult(
            trace_name="t", predictor_name="p", quantile=0.95, confidence=0.95
        )
        for i, wait in enumerate(waits):
            correct = wait <= bound
            result.record_outcome(wait / bound, correct)
            result.jobs.append(
                JobRecord(submit_time=float(i), predicted=bound, actual=wait, correct=correct)
            )
        return result

    def test_counts_runs(self):
        # misses at indexes 1,2 and 5: two runs of lengths 2 and 1.
        waits = [1, 10, 10, 1, 1, 10, 1]
        result = self._result_with_misses(waits, bound=5.0)
        stats = miss_run_stats(result)
        assert stats.n_misses == 3
        assert stats.n_runs == 2
        assert stats.longest_run == 2
        assert stats.mean_run == pytest.approx(1.5)

    def test_no_misses(self):
        result = self._result_with_misses([1, 1, 1], bound=5.0)
        stats = miss_run_stats(result)
        assert stats.n_misses == 0
        assert stats.longest_run == 0

    def test_requires_job_records(self):
        from repro.simulator.results import ReplayResult

        empty = ReplayResult(
            trace_name="t", predictor_name="p", quantile=0.95, confidence=0.95
        )
        with pytest.raises(ValueError):
            miss_run_stats(empty)


class TestRollingCoverage:
    def test_detects_localized_failure(self, rng):
        # Stationary waits, then a sudden 50x surge: rolling coverage dips.
        waits = np.concatenate(
            [rng.lognormal(3, 0.5, 1500), rng.lognormal(3 + np.log(50), 0.5, 200),
             rng.lognormal(3 + np.log(50), 0.5, 300)]
        )
        trace = make_trace(waits, gap=60.0)
        result = replay_single(
            trace, BMBPPredictor(), ReplayConfig(record_jobs=True)
        )
        coverage = rolling_coverage(result, window=100)
        surge_start = 1500 - int(0.1 * len(trace))  # index in evaluated jobs
        assert coverage[:surge_start - 100].min() > 0.85
        assert coverage[surge_start:surge_start + 200].min() < 0.85

    def test_validation(self, rng):
        trace = make_trace(rng.lognormal(3, 1, 200))
        result = replay_single(trace, BMBPPredictor(), ReplayConfig(record_jobs=True))
        with pytest.raises(ValueError):
            rolling_coverage(result, window=0)


class TestNonstationarityScore:
    def test_stationary_scores_low(self, rng):
        trace = make_trace(rng.lognormal(4, 1, 2000))
        assert nonstationarity_score(trace) < 0.5

    def test_strong_queue_scores_high(self):
        config = GeneratorConfig(scale=0.1, seed=11, min_jobs=1000)
        trace = generate_queue_trace(spec_for("datastar", "normal"), config)
        assert nonstationarity_score(trace) > 0.8

    def test_validation(self, rng):
        trace = make_trace(rng.lognormal(3, 1, 10))
        with pytest.raises(ValueError):
            nonstationarity_score(trace, pieces=1)
        with pytest.raises(ValueError):
            nonstationarity_score(make_trace([1.0, 2.0]), pieces=4)
