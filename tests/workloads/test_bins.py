"""Tests for the processor-count bins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.bins import (
    PROC_BINS,
    bin_index,
    bin_label,
    bin_of,
    partition_by_bin,
)
from repro.workloads.trace import Job, Trace


class TestBinAssignment:
    @pytest.mark.parametrize(
        "procs, expected",
        [
            (1, "1-4"), (4, "1-4"),
            (5, "5-16"), (16, "5-16"),
            (17, "17-64"), (64, "17-64"),
            (65, "65+"), (4096, "65+"),
        ],
    )
    def test_boundaries(self, procs, expected):
        assert bin_label(bin_of(procs)) == expected

    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            bin_index(0)

    @given(procs=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=200)
    def test_every_count_lands_in_exactly_one_bin(self, procs):
        matches = [
            (lo, hi)
            for lo, hi in PROC_BINS
            if procs >= lo and (hi is None or procs <= hi)
        ]
        assert len(matches) == 1
        assert bin_of(procs) == matches[0]

    def test_labels(self):
        assert bin_label((1, 4)) == "1-4"
        assert bin_label((65, None)) == "65+"


class TestPartition:
    def test_all_labels_present_and_jobs_conserved(self):
        jobs = [Job(submit_time=float(i), wait=1.0, procs=p)
                for i, p in enumerate([1, 2, 8, 32, 100, 3])]
        parts = partition_by_bin(Trace(jobs=jobs, name="t"))
        assert set(parts) == {"1-4", "5-16", "17-64", "65+"}
        assert sum(len(part) for part in parts.values()) == len(jobs)
        assert len(parts["1-4"]) == 3
        assert len(parts["65+"]) == 1

    def test_empty_trace(self):
        parts = partition_by_bin(Trace(jobs=[]))
        assert all(len(part) == 0 for part in parts.values())

    def test_part_names_carry_bin_label(self):
        parts = partition_by_bin(Trace(jobs=[Job(submit_time=0.0, wait=0.0)], name="q"))
        assert parts["1-4"].name == "q[1-4]"
