"""Fast smoke benchmark: serial vs parallel replay of one queue.

Runs at a tiny scale so it fits the tier-1 budget, asserts the two
execution modes agree exactly, and exercises the ``BENCH_replay.json``
perf-trajectory writer end to end.  The paper-scale version lives in
``benchmarks/bench_replay_smoke.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments.parallel import queue_work
from repro.experiments.runner import ExperimentConfig, clear_caches
from repro.runtime import (
    BENCH_SCHEMA,
    Task,
    bench_run_entry,
    reset_stats,
    run_tasks,
    stats,
    write_bench_artifact,
)

TINY = ExperimentConfig(scale=0.01, seed=11, min_jobs=250)
MACHINE, QUEUE = "llnl", "all"


@pytest.fixture(autouse=True)
def _fresh(tmp_path, monkeypatch):
    monkeypatch.setenv("BMBP_CACHE_DIR", str(tmp_path / "cache"))
    clear_caches()
    reset_stats()
    yield
    clear_caches()


def _timed_run(name, jobs, n_tasks):
    """Replay the queue ``n_tasks`` times at the given parallelism."""
    tasks = [
        Task(func=queue_work, args=(MACHINE, QUEUE, TINY),
             label=f"{MACHINE}/{QUEUE}#{i}", cache=False)
        for i in range(n_tasks)
    ]
    before = stats()
    started = time.perf_counter()
    results = run_tasks(tasks, jobs=jobs)
    elapsed = time.perf_counter() - started
    entry = bench_run_entry(name, stats().since(before), jobs=jobs, seconds=elapsed)
    return results, entry


def test_smoke_serial_vs_parallel_writes_artifact(tmp_path):
    serial_results, serial_entry = _timed_run("smoke-serial", jobs=1, n_tasks=2)
    parallel_results, parallel_entry = _timed_run("smoke-parallel", jobs=2, n_tasks=2)

    # Identical outputs, mode-independent.
    for s, p in zip(serial_results, parallel_results):
        for method in s:
            assert s[method].n_evaluated == p[method].n_evaluated
            assert s[method].ratios == p[method].ratios

    path = write_bench_artifact(
        tmp_path / "BENCH_replay.json", [serial_entry, parallel_entry]
    )
    document = json.loads(path.read_text())
    assert document["schema"] == BENCH_SCHEMA
    assert [run["name"] for run in document["runs"]] == [
        "smoke-serial", "smoke-parallel"
    ]
    for run in document["runs"]:
        assert run["tasks"] == 2
        assert run["replays"] == 2
        assert run["cache_hits"] == 0
        assert run["seconds"] > 0
        assert len(run["per_task"]) == 2
        for task in run["per_task"]:
            assert task["seconds"] >= 0
            assert task["cached"] is False
    assert document["runs"][1]["jobs"] == 2
