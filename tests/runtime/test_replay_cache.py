"""Unit tests for the persistent disk cache and its canonical keys."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.runtime.cache import (
    CACHE_VERSION,
    DiskCache,
    canonical_key,
    cache_enabled_from_env,
    default_cache_dir,
)


class TestCanonicalKey:
    def test_stable_across_calls(self):
        config = ExperimentConfig(scale=0.1, seed=3)
        assert canonical_key("f", (config,)) == canonical_key("f", (config,))

    def test_dataclass_fields_matter(self):
        a = canonical_key("f", (ExperimentConfig(seed=1),))
        b = canonical_key("f", (ExperimentConfig(seed=2),))
        assert a != b

    def test_dict_ordering_is_canonicalized(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_embeds_cache_version(self):
        payload = json.loads(canonical_key("f"))
        assert payload["cache_version"] == CACHE_VERSION


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = canonical_key("job", 1)
        hit, _ = cache.get(key)
        assert not hit
        cache.put(key, {"answer": [1.0, 2.0]})
        hit, value = cache.get(key)
        assert hit
        assert value == {"answer": [1.0, 2.0]}

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = canonical_key("job", 2)
        cache.put(key, "value")
        (entry,) = tmp_path.glob("v*/*.pkl")
        entry.write_bytes(b"not a pickle at all")
        hit, _ = cache.get(key)
        assert not hit

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = canonical_key("job", 3)
        cache.put(key, "value")
        (entry,) = tmp_path.glob("v*/*.pkl")
        payload = pickle.loads(entry.read_bytes())
        payload["version"] = CACHE_VERSION + 40
        entry.write_bytes(pickle.dumps(payload))
        hit, _ = cache.get(key)
        assert not hit

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = canonical_key("job", 4)
        cache.put(key, "value")
        (entry,) = tmp_path.glob("v*/*.pkl")
        payload = pickle.loads(entry.read_bytes())
        payload["key"] = canonical_key("job", 5)
        entry.write_bytes(pickle.dumps(payload))
        hit, _ = cache.get(key)
        assert not hit

    def test_clear_removes_everything(self, tmp_path):
        cache = DiskCache(tmp_path)
        for i in range(3):
            cache.put(canonical_key("job", i), i)
        assert cache.clear() == 3
        assert not list(tmp_path.glob("v*/*.pkl"))
        assert cache.clear() == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(canonical_key("job", 9), list(range(1000)))
        leftovers = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestEnvironment:
    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BMBP_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    @pytest.mark.parametrize(
        "value,expected",
        [("0", False), ("false", False), ("off", False), ("", False),
         ("1", True), ("yes", True)],
    )
    def test_cache_enabled_env(self, monkeypatch, value, expected):
        monkeypatch.setenv("BMBP_CACHE", value)
        assert cache_enabled_from_env() is expected
