"""Tests for the parallel experiment engine.

The contracts under test are the ones the experiments lean on:

* parallel results are *identical* (not just close) to serial results for
  a fixed seed — traces are regenerated worker-side from the same spec;
* cache hits after a simulated process restart return equal results and do
  zero replays;
* corrupted or stale-version cache entries are recomputed, never a crash;
* worker exceptions propagate as :class:`WorkerError` with the remote
  traceback, in task order.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.experiments.parallel import queue_work, run_queue_batch
from repro.experiments.runner import ExperimentConfig, clear_caches, table3_specs
from repro.runtime import (
    CACHE_VERSION,
    Task,
    WorkerError,
    reset_configuration,
    reset_stats,
    resolve_jobs,
    run_tasks,
    stats,
)


@pytest.fixture(autouse=True)
def _default_engine_settings():
    """Shield these tests from sticky configure() calls made elsewhere."""
    reset_configuration()
    yield
    reset_configuration()

#: Small but non-trivial: a few hundred jobs per queue.
TINY = ExperimentConfig(scale=0.01, seed=11, min_jobs=250)

fork_available = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture
def fresh_cache_dir(tmp_path, monkeypatch):
    """A private on-disk cache plus clean in-process caches and counters."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("BMBP_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("BMBP_JOBS", raising=False)
    clear_caches()
    reset_stats()
    yield cache_dir
    clear_caches()


def _assert_results_equal(a, b):
    assert set(a) == set(b)
    for method in a:
        ra, rb = a[method], b[method]
        assert ra.n_evaluated == rb.n_evaluated
        assert ra.n_correct == rb.n_correct
        assert ra.n_skipped == rb.n_skipped
        assert ra.ratios == rb.ratios  # exact, not approx
        assert ra.change_points == rb.change_points


def _tasks(specs, config=TINY, cache=True):
    return [
        Task(
            func=queue_work,
            args=(spec.machine, spec.queue, config),
            label=spec.label,
            cache=cache,
        )
        for spec in specs
    ]


class TestDeterminism:
    def test_parallel_results_identical_to_serial(self, fresh_cache_dir):
        specs = table3_specs()[:2]
        serial = run_tasks(_tasks(specs), jobs=1, cache=False)
        parallel = run_tasks(_tasks(specs), jobs=2, cache=False)
        for s, p in zip(serial, parallel):
            _assert_results_equal(s, p)

    def test_results_come_back_in_task_order(self, fresh_cache_dir):
        specs = table3_specs()[:3]
        results = run_tasks(_tasks(specs), jobs=2, cache=False)
        for spec, result in zip(specs, results):
            assert result["bmbp"].trace_name == spec.label


class TestPersistentCache:
    def test_hit_after_simulated_restart(self, fresh_cache_dir):
        specs = table3_specs()[:1]
        first = run_queue_batch(specs, TINY)
        clear_caches()  # drop in-process state: "new process"
        before = stats()
        second = run_queue_batch(specs, TINY)
        delta = stats().since(before)
        assert delta.cache_hits == 1
        assert delta.replays_run == 0
        _assert_results_equal(first[0], second[0])

    def test_in_process_cache_short_circuits_disk(self, fresh_cache_dir):
        specs = table3_specs()[:1]
        first = run_queue_batch(specs, TINY)
        before = stats()
        second = run_queue_batch(specs, TINY)
        assert second[0] is first[0]  # same objects, no engine round-trip
        delta = stats().since(before)
        assert delta.cache_hits == 0 and delta.cache_misses == 0

    def test_corrupt_entry_recomputed_not_crash(self, fresh_cache_dir):
        specs = table3_specs()[:1]
        first = run_queue_batch(specs, TINY)
        entries = list(fresh_cache_dir.glob("v*/*.pkl"))
        assert entries, "replay result was not persisted"
        for entry in entries:
            entry.write_bytes(b"\x00garbage, not a pickle")
        clear_caches()
        before = stats()
        second = run_queue_batch(specs, TINY)
        delta = stats().since(before)
        assert delta.replays_run == 1  # recomputed, not served
        _assert_results_equal(first[0], second[0])

    def test_stale_version_entry_recomputed(self, fresh_cache_dir):
        specs = table3_specs()[:1]
        first = run_queue_batch(specs, TINY)
        entries = list(fresh_cache_dir.glob("v*/*.pkl"))
        assert entries
        for entry in entries:
            payload = pickle.loads(entry.read_bytes())
            payload["version"] = CACHE_VERSION + 1
            entry.write_bytes(pickle.dumps(payload))
        clear_caches()
        before = stats()
        second = run_queue_batch(specs, TINY)
        delta = stats().since(before)
        assert delta.cache_hits == 0
        assert delta.replays_run == 1
        _assert_results_equal(first[0], second[0])

    def test_different_config_is_a_different_key(self, fresh_cache_dir):
        specs = table3_specs()[:1]
        run_queue_batch(specs, TINY)
        clear_caches()
        other = ExperimentConfig(scale=0.01, seed=12, min_jobs=250)
        before = stats()
        run_queue_batch(specs, other)
        delta = stats().since(before)
        assert delta.cache_hits == 0 and delta.replays_run == 1


def _boom(tag):
    raise ValueError(f"boom {tag}")


class TestWorkerErrors:
    def test_error_propagates_serial(self, fresh_cache_dir):
        task = Task(func=_boom, args=("x",), label="exploding", cache=False)
        with pytest.raises(WorkerError) as excinfo:
            run_tasks([task], jobs=1)
        assert excinfo.value.label == "exploding"
        assert "ValueError" in excinfo.value.remote_traceback
        assert "boom x" in excinfo.value.remote_traceback

    @pytest.mark.skipif(not fork_available, reason="needs fork start method")
    def test_error_propagates_from_pool_in_task_order(self, fresh_cache_dir):
        tasks = [
            Task(func=_boom, args=(tag,), label=f"boom-{tag}", cache=False)
            for tag in ("first", "second")
        ]
        with pytest.raises(WorkerError) as excinfo:
            run_tasks(tasks, jobs=2)
        assert excinfo.value.label == "boom-first"
        assert "boom first" in excinfo.value.remote_traceback


class TestJobsResolution:
    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == 1  # clamped

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("BMBP_JOBS", "5")
        assert resolve_jobs() == 5
        monkeypatch.setenv("BMBP_JOBS", "not-a-number")
        assert resolve_jobs() == 1

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("BMBP_JOBS", raising=False)
        assert resolve_jobs() == 1


def _square(x):
    return x * x


class TestProgressCallback:
    def test_serial_ticks_in_task_order(self, fresh_cache_dir):
        tasks = [Task(func=_square, args=(i,), label=f"s{i}", cache=False)
                 for i in range(5)]
        seen = []
        run_tasks(tasks, jobs=1, cache=False,
                  progress=lambda d, t: seen.append((d, t)))
        assert seen == [(i + 1, 5) for i in range(5)]

    def test_cache_hits_tick_immediately(self, fresh_cache_dir):
        tasks = [Task(func=_square, args=(i,), label=f"h{i}") for i in range(4)]
        run_tasks(tasks, jobs=1, cache=True)
        seen = []
        run_tasks(tasks, jobs=1, cache=True,
                  progress=lambda d, t: seen.append((d, t)))
        assert seen == [(i + 1, 4) for i in range(4)]

    @pytest.mark.skipif(not fork_available, reason="no fork start method")
    def test_pool_ticks_once_per_task(self, fresh_cache_dir):
        tasks = [Task(func=_square, args=(i,), label=f"p{i}", cache=False)
                 for i in range(6)]
        seen = []
        results = run_tasks(tasks, jobs=2, cache=False,
                            progress=lambda d, t: seen.append((d, t)))
        assert results == [i * i for i in range(6)]
        # Completion order is nondeterministic; the tick sequence is not.
        assert seen == [(i + 1, 6) for i in range(6)]


class TestCacheKeyOverride:
    def test_override_wins_over_args(self, fresh_cache_dir):
        first = Task(func=_square, args=(3,), label="a", cache_key="shared-key")
        # Different args, same explicit key: must be served from the first
        # task's cached result — the override, not the args, is the key.
        second = Task(func=_square, args=(4,), label="b", cache_key="shared-key")
        assert run_tasks([first], jobs=1, cache=True) == [9]
        before = stats()
        assert run_tasks([second], jobs=1, cache=True) == [9]
        delta = stats().since(before)
        assert delta.cache_hits == 1 and delta.cache_misses == 0

    def test_distinct_overrides_are_distinct_entries(self, fresh_cache_dir):
        a = Task(func=_square, args=(5,), label="a", cache_key="key-a")
        b = Task(func=_square, args=(5,), label="b", cache_key="key-b")
        run_tasks([a], jobs=1, cache=True)
        before = stats()
        run_tasks([b], jobs=1, cache=True)
        delta = stats().since(before)
        assert delta.cache_misses == 1 and delta.cache_hits == 0

    def test_default_key_unchanged_without_override(self, fresh_cache_dir):
        task = Task(func=_square, args=(7,), label="d")
        assert task.key() == Task(func=_square, args=(7,)).key()
        assert "shared" not in task.key()
