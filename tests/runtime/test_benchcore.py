"""Unit test for the ``bmbp bench-core`` kernel benchmark.

Runs at a tiny scale (hundreds of jobs, one repetition) so it fits the
tier-1 budget: the point is that the benchmark machinery works end to end
and both artifacts are well formed, not the speedup numbers themselves —
those are asserted by the ``--smoke`` CI job at a realistic scale.
"""

from __future__ import annotations

import json

from repro.runtime.benchcore import (
    CORE_BENCH_SCHEMA,
    REFIT_BENCH_SCHEMA,
    run_core_bench,
)


def test_tiny_bench_writes_wellformed_artifacts(tmp_path):
    core_path = tmp_path / "BENCH_core.json"
    refit_path = tmp_path / "BENCH_refit.json"
    report = run_core_bench(
        smoke=False,  # no speedup floors at this unrealistically tiny scale
        reps=1,
        dense_jobs=600,
        sparse_jobs=100,
        artifact=core_path,
        refit_artifact=refit_path,
        skip_per_method=True,
    )
    on_disk = json.loads(core_path.read_text())
    assert on_disk["schema"] == CORE_BENCH_SCHEMA
    assert "refit_bench" not in on_disk  # split into its own artifact
    assert set(on_disk["bank_replay"]) == {"dense-iid", "dense-ar5", "sparse-ar9"}
    for row in on_disk["bank_replay"].values():
        assert set(row["engines"]) == {"batched", "reference"}
        assert row["engines"]["batched"]["jobs_per_s"] > 0
        assert row["speedup"] > 0
    assert on_disk["summary"]["dense_bank_speedup_min"] <= \
        on_disk["summary"]["dense_bank_speedup_max"]
    assert on_disk["summary"]["sparse_refit_speedup"] > 0

    refit_disk = json.loads(refit_path.read_text())
    assert refit_disk["schema"] == REFIT_BENCH_SCHEMA
    ab = refit_disk["sparse_refit_ab"]
    assert ab["incremental_jobs_per_s"] > 0
    assert ab["recompute_jobs_per_s"] > 0
    flush = refit_disk["history_flush"]
    assert len(flush) >= 4 and all(r["merge_us"] >= 0 for r in flush)
    # Fractions must bracket the production crossover on both sides.
    fractions = [r["batch_fraction"] for r in flush]
    assert fractions == sorted(fractions)
    per_refit = refit_disk["per_method_refit"]
    assert per_refit["bmbp"]["incremental_us"] > 0
    assert per_refit["bmbp"]["recompute_us"] > 0
    # Sketch methods benchmark their (single) streaming mode only.
    assert "incremental_us" in per_refit["p2-quantile"]
    assert "recompute_us" not in per_refit["p2-quantile"]
    assert report["config"]["reps"] == 1


def test_per_method_matrix_covers_bank_and_sketches(tmp_path):
    report = run_core_bench(
        smoke=False,
        reps=1,
        dense_jobs=600,
        sparse_jobs=100,
        artifact=None,
        refit_artifact=None,
    )
    per_method = report["per_method"]
    expected = set(report["config"]["methods"]) | set(
        report["config"]["sketch_methods"]
    )
    assert set(per_method) == expected
    assert {"p2-quantile", "tdigest-quantile"} <= set(per_method)
    for row in per_method.values():
        assert row["batched_jobs_per_s"] > 0
        assert row["reference_jobs_per_s"] > 0
