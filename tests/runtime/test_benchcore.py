"""Unit test for the ``bmbp bench-core`` kernel benchmark.

Runs at a tiny scale (hundreds of jobs, one repetition) so it fits the
tier-1 budget: the point is that the benchmark machinery works end to end
and the artifact is well formed, not the speedup numbers themselves —
those are asserted by the ``--smoke`` CI job at a realistic scale.
"""

from __future__ import annotations

import json

from repro.runtime.benchcore import CORE_BENCH_SCHEMA, run_core_bench


def test_tiny_bench_writes_wellformed_artifact(tmp_path):
    path = tmp_path / "BENCH_core.json"
    report = run_core_bench(
        smoke=False,  # no speedup floor at this unrealistically tiny scale
        reps=1,
        dense_jobs=600,
        sparse_jobs=100,
        artifact=path,
        skip_per_method=True,
    )
    on_disk = json.loads(path.read_text())
    assert on_disk["schema"] == CORE_BENCH_SCHEMA
    assert set(on_disk["bank_replay"]) == {"dense-iid", "dense-ar5", "sparse-ar9"}
    for row in on_disk["bank_replay"].values():
        assert set(row["engines"]) == {"batched", "reference"}
        assert row["engines"]["batched"]["jobs_per_s"] > 0
        assert row["speedup"] > 0
    assert on_disk["summary"]["dense_bank_speedup_min"] <= \
        on_disk["summary"]["dense_bank_speedup_max"]
    flush = on_disk["microbench"]["history_flush"]
    assert len(flush) == 5 and all(r["merge_us"] >= 0 for r in flush)
    refit = on_disk["microbench"]["refit"]
    assert "bmbp" in refit and refit["bmbp"]["refit_us"] > 0
    assert report["config"]["reps"] == 1


def test_per_method_matrix_covers_the_bank(tmp_path):
    report = run_core_bench(
        smoke=False,
        reps=1,
        dense_jobs=600,
        sparse_jobs=100,
        artifact=None,
    )
    per_method = report["per_method"]
    assert set(per_method) == set(report["config"]["methods"])
    for row in per_method.values():
        assert row["batched_jobs_per_s"] > 0
        assert row["reference_jobs_per_s"] > 0
