"""Tests for published queue constraints."""

import pytest

from repro.scheduler.constraints import QueueConstraints, QueueLimit, enforce, route
from repro.scheduler.job import SchedJob
from repro.scheduler.workload import ClusterWorkloadConfig, generate_jobs


def job(job_id=0, procs=4, runtime=100.0, estimate=None, queue="normal"):
    return SchedJob(
        job_id=job_id, arrival=0.0, runtime=runtime, procs=procs,
        estimate=estimate if estimate is not None else runtime, queue=queue,
    )


TABLE = QueueConstraints({
    "express": QueueLimit(max_procs=4, max_runtime=1800.0),
    "normal": QueueLimit(max_procs=64, max_runtime=43200.0),
    "long": QueueLimit(max_procs=16, max_runtime=None),
})


class TestLimits:
    def test_admits_within_limits(self):
        assert TABLE.limit_for("express").admits(job(procs=4, runtime=1800.0))

    def test_rejects_too_many_procs(self):
        assert not TABLE.limit_for("express").admits(job(procs=8, runtime=60.0))

    def test_rejects_long_estimate_even_if_runtime_short(self):
        # Enforcement sees the padded estimate, not the true runtime.
        padded = job(procs=2, runtime=60.0, estimate=7200.0)
        assert not TABLE.limit_for("express").admits(padded)

    def test_unlimited_dimensions(self):
        week = job(procs=8, runtime=7 * 86400.0)
        assert TABLE.limit_for("long").admits(week)

    def test_unknown_queue(self):
        with pytest.raises(KeyError):
            TABLE.limit_for("hero")

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            QueueConstraints({})


class TestEnforce:
    def test_partition(self):
        jobs = [
            job(0, procs=2, runtime=600.0, queue="express"),
            job(1, procs=32, runtime=600.0, queue="express"),  # too wide
            job(2, procs=32, runtime=600.0, queue="normal"),
        ]
        accepted, rejected = enforce(jobs, TABLE)
        assert [j.job_id for j in accepted] == [0, 2]
        assert [j.job_id for j in rejected] == [1]


class TestRoute:
    def test_routes_to_first_admitting_queue(self):
        quick = job(0, procs=2, runtime=300.0)
        wide = job(1, procs=32, runtime=300.0)
        week = job(2, procs=8, runtime=7 * 86400.0)
        routed, unroutable = route(
            [quick, wide, week], TABLE, preference=["express", "normal", "long"]
        )
        assert [j.queue for j in routed] == ["express", "normal", "long"]
        assert unroutable == []

    def test_unroutable_jobs(self):
        monster = job(0, procs=128, runtime=600.0)
        routed, unroutable = route([monster], TABLE)
        assert routed == []
        assert [j.job_id for j in unroutable] == [0]

    def test_invalid_preference(self):
        with pytest.raises(KeyError):
            route([job()], TABLE, preference=["hero"])

    def test_routing_couples_shape_to_queue(self):
        """On a realistic stream, express gets only small/short jobs."""
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=2000, seed=12))
        routed, _ = route(jobs, TABLE, preference=["express", "normal", "long"])
        express = [j for j in routed if j.queue == "express"]
        assert express, "some jobs should qualify for express"
        assert all(j.procs <= 4 and j.estimate <= 1800.0 for j in express)
        normal = [j for j in routed if j.queue == "normal"]
        # Queues now differ in composition: express is smaller on average.
        mean = lambda xs: sum(xs) / len(xs)
        assert mean([j.procs for j in express]) < mean([j.procs for j in normal])
