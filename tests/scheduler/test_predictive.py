"""Unit tests for the bound-aware predictive policies.

The invariant suite (`test_invariants.py`) proves the policies legal on
arbitrary workloads; these tests pin their *decisions*: what each policy
does with a specific bound, budget, and queue state.  A scripted feed
stands in for the forecaster so every branch is reachable
deterministically; one closed-loop test at the bottom uses the real
:class:`ForecastFeed` end to end.
"""

import pytest

from repro.scheduler.engine import MAINTENANCE_QUEUE, simulate
from repro.scheduler.job import SchedJob
from repro.scheduler.predictive import (
    AdmissionHoldPolicy,
    BoundRankedQueuePolicy,
    ClassBudget,
    ForecastFeed,
    PredictiveBackfillPolicy,
)


class ScriptedFeed:
    """Feed double: bounds are set by the test, events are counted."""

    def __init__(self, bounds=None):
        self.bounds = dict(bounds or {})
        self.events = 0

    def job_arrived(self, job, now):
        self.events += 1

    def job_started(self, job, now):
        self.events += 1

    def bound(self, queue):
        return self.bounds.get(queue)


def _job(job_id, queue="normal", arrival=0.0, procs=1, runtime=100.0,
         estimate=None):
    return SchedJob(
        job_id=job_id, arrival=arrival, runtime=runtime, procs=procs,
        estimate=estimate if estimate is not None else max(runtime, 1.0),
        queue=queue,
    )


BUDGETS = {
    "interactive": ClassBudget(900.0),
    "normal": ClassBudget(3600.0),
    "batch": ClassBudget(10800.0, deferrable=True, max_hold=600.0),
}


class TestClassBudget:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            ClassBudget(0.0)

    @pytest.mark.parametrize("max_hold", [0.0, -5.0, float("inf")])
    def test_rejects_bad_max_hold(self, max_hold):
        with pytest.raises(ValueError, match="max_hold"):
            ClassBudget(100.0, max_hold=max_hold)

    def test_defaults_are_not_deferrable(self):
        assert not ClassBudget(100.0).deferrable


class TestForecastFeed:
    def test_untrained_queue_quotes_no_bound(self):
        assert ForecastFeed(training_jobs=4).bound("normal") is None

    def test_trains_from_submit_start_pairs(self):
        # BMBP at (0.95, 0.95) cannot quote until the binomial bound index
        # exists (~59 samples), regardless of the training_jobs gate.
        feed = ForecastFeed(training_jobs=4)
        for i in range(70):
            job = _job(i)
            feed.job_arrived(job, now=float(i))
            feed.job_started(job, now=float(i) + 50.0)
        bound = feed.bound("normal")
        assert bound is not None and bound >= 50.0
        assert feed.events == 140

    def test_maintenance_jobs_are_invisible(self):
        feed = ForecastFeed(training_jobs=4)
        blocker = _job(0, queue=MAINTENANCE_QUEUE)
        feed.job_arrived(blocker, now=0.0)
        feed.job_started(blocker, now=1.0)
        assert feed.events == 0


class TestPredictiveBackfillOrder:
    def test_cold_start_degrades_to_shortest_estimate_first(self):
        policy = PredictiveBackfillPolicy(feed=ScriptedFeed(), budgets=BUDGETS)
        jobs = [_job(0, estimate=500.0), _job(1, estimate=50.0),
                _job(2, estimate=5000.0)]
        assert [j.job_id for j in policy._backfill_order(jobs, now=0.0)] == [1, 0, 2]

    def test_predicted_budget_busters_jump_the_order(self):
        # interactive's bound (2000s) blows its 900s budget; the long
        # interactive job outranks a much shorter safe job.
        feed = ScriptedFeed({"interactive": 2000.0, "normal": 10.0})
        policy = PredictiveBackfillPolicy(feed=feed, budgets=BUDGETS)
        at_risk = _job(0, queue="interactive", estimate=5000.0)
        safe = _job(1, queue="normal", estimate=10.0)
        assert policy._backfill_order([safe, at_risk], now=0.0) == [at_risk, safe]

    def test_most_negative_slack_goes_first(self):
        feed = ScriptedFeed({"interactive": 2000.0, "normal": 100000.0})
        policy = PredictiveBackfillPolicy(feed=feed, budgets=BUDGETS)
        bad = _job(0, queue="interactive")
        worse = _job(1, queue="normal")  # slack/budget is far more negative
        assert policy._backfill_order([bad, worse], now=0.0) == [worse, bad]


class TestBoundRankedUrgency:
    def test_cold_start_is_aged_fcfs(self):
        policy = BoundRankedQueuePolicy(feed=ScriptedFeed(), budgets=BUDGETS)
        old = _job(0, arrival=0.0)
        young = _job(1, arrival=1000.0)
        assert policy._urgency_key(old, 2000.0) < policy._urgency_key(young, 2000.0)

    def test_bound_pressure_outranks_age(self):
        # Both jobs just arrived; the queue predicted to violate wins.
        feed = ScriptedFeed({"interactive": 2000.0, "batch": 2000.0})
        policy = BoundRankedQueuePolicy(feed=feed, budgets=BUDGETS)
        pressed = _job(0, queue="interactive")   # 2000/900 > 1
        relaxed = _job(1, queue="batch")         # 2000/10800 << 1
        assert policy._urgency_key(pressed, 0.0) < policy._urgency_key(relaxed, 0.0)

    def test_equal_urgency_breaks_by_shorter_estimate(self):
        policy = BoundRankedQueuePolicy(feed=ScriptedFeed(), budgets=BUDGETS)
        short = _job(0, estimate=10.0)
        long = _job(1, estimate=1000.0)
        assert policy._urgency_key(short, 0.0) < policy._urgency_key(long, 0.0)


class TestAdmissionHold:
    def _policy(self, bounds=None):
        return AdmissionHoldPolicy(feed=ScriptedFeed(bounds), budgets=BUDGETS)

    def test_deferrable_job_is_held_when_bound_exceeds_budget(self):
        policy = self._policy({"batch": 20000.0})
        job = _job(0, queue="batch")
        policy.job_arrived(job, now=100.0)
        assert policy.hold_log[0]["held_at"] == 100.0
        assert policy.hold_log[0]["deadline"] == 100.0 + 600.0
        assert policy.next_wakeup(100.0) == 700.0

    def test_urgent_classes_are_never_held(self):
        policy = self._policy({"interactive": 1e9, "normal": 1e9})
        policy.job_arrived(_job(0, queue="interactive"), now=0.0)
        policy.job_arrived(_job(1, queue="normal"), now=0.0)
        assert policy.hold_log == {}

    def test_no_hold_while_untrained_or_under_budget(self):
        policy = self._policy({"batch": 10.0})  # far under the 10800 budget
        policy.job_arrived(_job(0, queue="batch"), now=0.0)
        cold = self._policy()  # no bound at all
        cold.job_arrived(_job(1, queue="batch"), now=0.0)
        assert policy.hold_log == {} and cold.hold_log == {}

    def test_select_filters_held_jobs(self, machine16):
        policy = self._policy({"batch": 20000.0})
        held = _job(0, queue="batch")
        free = _job(1, queue="normal")
        policy.job_arrived(held, now=0.0)
        started = policy.select([held, free], machine16, now=0.0)
        assert started == [free]

    def test_release_when_bound_recovers(self, machine16):
        policy = self._policy({"batch": 20000.0})
        job = _job(0, queue="batch")
        policy.job_arrived(job, now=0.0)
        policy.feed.bounds["batch"] = 500.0  # congestion cleared
        assert policy.select([job], machine16, now=50.0) == [job]
        assert policy.hold_log[0]["reason"] == "bound"
        assert policy.hold_log[0]["released_at"] == 50.0

    def test_release_on_timeout(self, machine16):
        policy = self._policy({"batch": 20000.0})
        job = _job(0, queue="batch")
        policy.job_arrived(job, now=0.0)
        assert policy.select([job], machine16, now=600.0) == [job]
        assert policy.hold_log[0]["reason"] == "timeout"

    def test_release_when_bound_becomes_unquotable(self, machine16):
        policy = self._policy({"batch": 20000.0})
        job = _job(0, queue="batch")
        policy.job_arrived(job, now=0.0)
        del policy.feed.bounds["batch"]
        assert policy.select([job], machine16, now=10.0) == [job]
        assert policy.hold_log[0]["reason"] == "untrained"

    def test_release_is_permanent(self, machine16):
        policy = self._policy({"batch": 20000.0})
        job = _job(0, queue="batch")
        policy.job_arrived(job, now=0.0)
        policy.feed.bounds["batch"] = 500.0
        policy.select([job], machine16, now=50.0)
        policy.feed.bounds["batch"] = 1e9  # pressure returns
        assert policy.select([job], machine16, now=60.0) == [job]

    def test_no_wakeup_without_holds(self):
        assert self._policy().next_wakeup(0.0) is None


@pytest.fixture
def machine16():
    from repro.scheduler.machine import Machine

    return Machine(16)


class TestClosedLoopEndToEnd:
    def test_feed_sees_every_real_job_twice(self):
        jobs = [_job(i, arrival=200.0 * i, runtime=300.0, procs=8)
                for i in range(80)]
        policy = BoundRankedQueuePolicy(
            feed=ForecastFeed(training_jobs=8), budgets=BUDGETS
        )
        simulate(jobs, 16, policy)
        assert policy.feed.events == 2 * len(jobs)
        # 80 completed normal-queue jobs clear both the training gate and
        # BMBP's ~59-sample quotability floor, so the loop must quote.
        assert policy.bound("normal") is not None
