"""Property-based invariants every scheduling policy must uphold.

The oracle-regret bench ranks policies by how *well* they schedule; these
tests pin down what it means to schedule *legally*.  Hypothesis draws
adversarial workloads — simultaneous arrivals, zero-length jobs, inflated
estimates, machine-filling widths — and every policy (classic and
predictive) must satisfy the same contract:

* every job eventually starts (finite workloads cannot starve anyone);
* no job starts before it arrives;
* processor occupancy never exceeds the machine;
* reruns are bit-identical (the engine's tie-determinism contract);
* EASY-style reservations are never delayed by backfill;
* conservative slots are honoured;
* jobs held by the admission policy never start before their release.

The reservation guarantees are checked with recording subclasses that
capture the shadow time / earliest slot the policy computed, then compare
against the start time the engine actually produced — the guarantee is
only valid because generated estimates are upper bounds on runtimes, as
EASY assumes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.engine import simulate
from repro.scheduler.evaluate import default_budgets
from repro.scheduler.job import SchedJob
from repro.scheduler.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FcfsPolicy,
    PriorityPolicy,
)
from repro.scheduler.predictive import (
    AdmissionHoldPolicy,
    BoundRankedQueuePolicy,
    ClassBudget,
    ForecastFeed,
    PredictiveBackfillPolicy,
)

QUEUES = ("interactive", "normal", "batch")


def _feed():
    return ForecastFeed(training_jobs=8)


POLICY_FACTORIES = {
    "fcfs": lambda: FcfsPolicy(),
    "easy": lambda: EasyBackfillPolicy(),
    "conservative": lambda: ConservativeBackfillPolicy(),
    "priority": lambda: PriorityPolicy(
        weights={"interactive": 100.0, "normal": 50.0}, aging_rate=1.0
    ),
    "predictive-backfill": lambda: PredictiveBackfillPolicy(
        feed=_feed(), budgets=default_budgets()
    ),
    "predictive-queue": lambda: BoundRankedQueuePolicy(
        feed=_feed(), budgets=default_budgets()
    ),
    "predictive-hold": lambda: AdmissionHoldPolicy(
        feed=_feed(), budgets=default_budgets()
    ),
}

ALL_POLICIES = sorted(POLICY_FACTORIES)


@st.composite
def workloads(draw):
    """(machine procs, job list): adversarial but legal inputs.

    Arrival gaps include 0.0 so simultaneous submissions exercise the
    tie-determinism path; estimates are runtime times an inflation factor
    in [1, 4], preserving the estimate >= runtime property EASY's
    reservation argument needs.
    """
    procs = draw(st.integers(min_value=8, max_value=32))
    n = draw(st.integers(min_value=3, max_value=40))
    jobs = []
    clock = 0.0
    for i in range(n):
        clock += draw(st.floats(min_value=0.0, max_value=3600.0))
        runtime = draw(st.floats(min_value=0.0, max_value=7200.0))
        inflation = draw(st.floats(min_value=1.0, max_value=4.0))
        jobs.append(
            SchedJob(
                job_id=i,
                arrival=clock,
                runtime=runtime,
                procs=draw(st.integers(min_value=1, max_value=procs)),
                estimate=max(runtime * inflation, 1.0),
                queue=draw(st.sampled_from(QUEUES)),
            )
        )
    return procs, jobs


class _ReservationRecorder:
    """Mixin logging every reservation pass and the backfill it admitted.

    ``_reservation`` is only reached when a head job is blocked, so each
    recorded pass carries the head's shadow/spare plus which jobs started
    in the FCFS-progress prefix (allowed to consume the head's procs) and
    which were backfilled around the reservation (not allowed to delay it).
    """

    @property
    def passes(self):
        if not hasattr(self, "_passes"):
            self._passes = []
        return self._passes

    def _reservation(self, head, machine, just_started, now):
        shadow, spare = EasyBackfillPolicy._reservation(
            head, machine, just_started, now
        )
        self.passes.append(
            {
                "now": now,
                "head": head.job_id,
                "shadow": shadow,
                "spare": spare,
                "progress": {job.job_id for job in just_started},
                "backfill": [],
            }
        )
        return shadow, spare

    def select(self, waiting, machine, now):
        n_before = len(self.passes)
        started = super().select(waiting, machine, now)
        if len(self.passes) > n_before:
            entry = self.passes[-1]
            entry["backfill"] = [
                (job.job_id, job.procs, job.estimate)
                for job in started
                if job.job_id not in entry["progress"]
            ]
        return started


class _RecordingEasy(_ReservationRecorder, EasyBackfillPolicy):
    pass


class _RecordingPredictiveBackfill(_ReservationRecorder, PredictiveBackfillPolicy):
    pass


class _RecordingBoundRanked(_ReservationRecorder, BoundRankedQueuePolicy):
    pass


RESERVING_FACTORIES = {
    "easy": lambda: _RecordingEasy(),
    "predictive-backfill": lambda: _RecordingPredictiveBackfill(
        feed=_feed(), budgets=default_budgets()
    ),
    "predictive-queue": lambda: _RecordingBoundRanked(
        feed=_feed(), budgets=default_budgets()
    ),
}


class _SlotRecorder(ConservativeBackfillPolicy):
    """Conservative backfilling that remembers each job's latest slot."""

    def __init__(self):
        self.slots = {}

    def _earliest_slot(self, profile, job, now):
        slot = ConservativeBackfillPolicy._earliest_slot(profile, job, now)
        self.slots[job.job_id] = slot
        return slot


@pytest.mark.parametrize("policy_name", ALL_POLICIES)
class TestUniversalInvariants:
    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_every_job_starts_no_earlier_than_arrival(self, policy_name, workload):
        procs, jobs = workload
        simulate(jobs, procs, POLICY_FACTORIES[policy_name]())
        for job in jobs:
            assert job.started, f"{policy_name} starved job {job.job_id}"
            assert job.start_time >= job.arrival - 1e-9

    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_occupancy_never_exceeds_machine(self, policy_name, workload):
        procs, jobs = workload
        simulate(jobs, procs, POLICY_FACTORIES[policy_name]())
        # Sweep (time, delta) events; releases sort before acquisitions at
        # equal times, matching the engine's completions-first ordering.
        events = []
        for job in jobs:
            events.append((job.start_time, job.procs))
            events.append((job.start_time + job.runtime, -job.procs))
        events.sort(key=lambda event: (event[0], event[1]))
        occupied = 0
        for _, delta in events:
            occupied += delta
            assert occupied <= procs, f"{policy_name} oversubscribed the machine"

    @given(workload=workloads())
    @settings(max_examples=10, deadline=None)
    def test_reruns_are_bit_identical(self, policy_name, workload):
        procs, jobs = workload
        def run():
            clones = [
                SchedJob(
                    job_id=j.job_id, arrival=j.arrival, runtime=j.runtime,
                    procs=j.procs, estimate=j.estimate, queue=j.queue,
                    priority=j.priority,
                )
                for j in jobs
            ]
            simulate(clones, procs, POLICY_FACTORIES[policy_name]())
            return [job.start_time for job in sorted(clones, key=lambda j: j.job_id)]
        assert run() == run()


#: Policies whose head is fixed FCFS order: once a job is head it stays
#: head until it starts, so the shadow bound is an end-to-end guarantee.
FCFS_HEAD = ("easy", "predictive-backfill")


@pytest.mark.parametrize("policy_name", sorted(RESERVING_FACTORIES))
class TestReservationGuarantee:
    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_backfill_satisfies_the_feasibility_rule(self, policy_name, workload):
        """Every backfilled job either finishes by the head's shadow time
        or fits in the spare processors — EASY's reservation guarantee,
        checked per pass against the recorded (shadow, spare).

        This is the form of the guarantee the bound-ranked policy
        preserves: its urgency ranking may hand the head role (and the
        head's processors) to a *more urgent* job between passes, but the
        jobs it backfills around whoever currently holds the reservation
        must still obey the feasibility rule.
        """
        procs, jobs = workload
        policy = RESERVING_FACTORIES[policy_name]()
        simulate(jobs, procs, policy)
        for entry in policy.passes:
            spare = entry["spare"]
            for job_id, width, estimate in entry["backfill"]:
                finishes_by_shadow = entry["now"] + estimate <= entry["shadow"]
                fits_spare = width <= spare
                assert finishes_by_shadow or fits_spare, (
                    f"{policy_name} backfilled job {job_id} at t={entry['now']} "
                    f"against shadow {entry['shadow']} with spare {spare}"
                )
                if not finishes_by_shadow:
                    spare -= width

    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_fcfs_head_starts_by_its_shadow(self, policy_name, workload):
        """With a fixed FCFS head, the shadow is an end-to-end bound.

        Valid because generated estimates upper-bound runtimes: actual
        completions can only come earlier than the estimated schedule the
        shadow was computed from.  Not asserted for the bound-ranked
        policy, whose reservation deliberately migrates to whichever job
        is currently most urgent.
        """
        if policy_name not in FCFS_HEAD:
            pytest.skip("dynamic head: shadow is not an end-to-end bound")
        procs, jobs = workload
        policy = RESERVING_FACTORIES[policy_name]()
        simulate(jobs, procs, policy)
        by_id = {job.job_id: job for job in jobs}
        last_shadow = {}
        for entry in policy.passes:
            last_shadow[entry["head"]] = entry["shadow"]
        for job_id, shadow in last_shadow.items():
            start = by_id[job_id].start_time
            tolerance = 1e-6 * max(1.0, abs(shadow))
            assert start <= shadow + tolerance, (
                f"{policy_name} head {job_id} started at {start}, "
                f"after its reserved shadow {shadow}"
            )


class TestConservativeSlots:
    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_jobs_start_no_later_than_their_last_slot(self, workload):
        procs, jobs = workload
        policy = _SlotRecorder()
        simulate(jobs, procs, policy)
        by_id = {job.job_id: job for job in jobs}
        for job_id, slot in policy.slots.items():
            start = by_id[job_id].start_time
            tolerance = 1e-6 * max(1.0, abs(slot))
            assert start <= slot + tolerance


class TestAdmissionHold:
    @given(workload=workloads())
    @settings(max_examples=20, deadline=None)
    def test_held_jobs_never_start_before_release(self, workload):
        procs, jobs = workload
        # A tiny deferrable budget makes holds likely once the feed trains.
        budgets = {
            "interactive": ClassBudget(900.0),
            "normal": ClassBudget(3600.0),
            "batch": ClassBudget(30.0, deferrable=True, max_hold=120.0),
        }
        policy = AdmissionHoldPolicy(feed=_feed(), budgets=budgets)
        simulate(jobs, procs, policy)
        by_id = {job.job_id: job for job in jobs}
        for job_id, entry in policy.hold_log.items():
            assert entry["released_at"] is not None, (
                f"job {job_id} was never released"
            )
            assert by_id[job_id].start_time >= entry["released_at"] - 1e-9
            assert entry["released_at"] - entry["held_at"] <= 120.0 + 1e-6
            assert entry["reason"] in {"bound", "timeout", "untrained"}


def test_job_wider_than_machine_is_rejected():
    job = SchedJob(job_id=0, arrival=0.0, runtime=10.0, procs=64)
    with pytest.raises(ValueError, match="requests 64 procs"):
        simulate([job], 32, FcfsPolicy())
