"""Tests for the scheduler event engine."""

import numpy as np
import pytest

from repro.scheduler.engine import SchedulerEngine, simulate
from repro.scheduler.job import SchedJob
from repro.scheduler.machine import Machine
from repro.scheduler.policies import EasyBackfillPolicy, FcfsPolicy
from repro.scheduler.workload import ClusterWorkloadConfig, generate_jobs


def job(job_id, arrival=0.0, runtime=100.0, procs=4):
    return SchedJob(job_id=job_id, arrival=arrival, runtime=runtime, procs=procs)


class TestBasicOperation:
    def test_all_jobs_eventually_start(self):
        jobs = [job(i, arrival=float(i), procs=8) for i in range(20)]
        trace = simulate(jobs, 8, FcfsPolicy())
        assert len(trace) == 20
        assert all(j.wait >= 0.0 for j in trace)

    def test_empty_machine_starts_job_immediately(self):
        trace = simulate([job(0, arrival=42.0)], 8, FcfsPolicy())
        assert trace[0].wait == 0.0

    def test_analytic_serialization(self):
        # Three full-machine jobs arriving together: waits 0, 100, 200.
        jobs = [job(i, arrival=0.0, runtime=100.0, procs=8) for i in range(3)]
        trace = simulate(jobs, 8, FcfsPolicy())
        assert sorted(j.wait for j in trace) == [0.0, 100.0, 200.0]

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            simulate([job(0, procs=100)], 8, FcfsPolicy())

    def test_output_trace_carries_metadata(self):
        trace = simulate(
            [SchedJob(job_id=0, arrival=1.0, runtime=5.0, procs=2, queue="q1")],
            8,
            FcfsPolicy(),
            trace_name="mysim",
        )
        assert trace.name == "mysim"
        assert trace[0].queue == "q1"
        assert trace[0].runtime == 5.0


class TestInvariants:
    def test_never_oversubscribed(self):
        """Replay a realistic stream and check occupancy at every start."""
        jobs = generate_jobs(
            ClusterWorkloadConfig(n_jobs=800, machine_procs=64, utilization=0.9, seed=5)
        )
        engine = SchedulerEngine(Machine(64), EasyBackfillPolicy())
        finished = engine.run(jobs)
        # Sweep the exact (start_time, end_time) intervals the engine
        # assigned; completions are processed before starts at equal times
        # (backfill starts genuinely coincide with completions).
        events = []
        for j in finished:
            events.append((j.start_time, 1, j.procs))
            events.append((j.end_time, 0, -j.procs))
        events.sort()
        used = 0
        for _, _, delta in events:
            used += delta
            assert 0 <= used <= 64

    def test_no_job_starts_before_arrival(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=500, seed=6))
        trace = simulate(jobs, 128, EasyBackfillPolicy())
        assert all(j.wait >= 0.0 for j in trace)

    def test_work_conserving_fcfs_on_single_proc_jobs(self):
        # Single-proc jobs on a big machine never wait.
        jobs = [job(i, arrival=float(i), runtime=1000.0, procs=1) for i in range(50)]
        trace = simulate(jobs, 64, FcfsPolicy())
        assert all(j.wait == 0.0 for j in trace)


class TestEngineObject:
    def test_run_returns_started_jobs(self):
        engine = SchedulerEngine(Machine(8), FcfsPolicy())
        finished = engine.run([job(0), job(1, arrival=10.0)])
        assert len(finished) == 2
        assert all(j.started for j in finished)


class TestTieDeterminism:
    """The total order for simultaneous events (module docstring of
    :mod:`repro.scheduler.engine`): retunes, completions, arrivals, pass."""

    def test_completion_tied_with_arrival_frees_procs_first(self):
        # Job 0 occupies the whole machine until t=100; job 1 arrives at
        # exactly t=100.  Completions are processed before arrivals at
        # equal times, so job 1 must start immediately with zero wait.
        jobs = [
            job(0, arrival=0.0, runtime=100.0, procs=8),
            job(1, arrival=100.0, runtime=10.0, procs=8),
        ]
        trace = simulate(jobs, 8, FcfsPolicy())
        waits = {j.submit_time: j.wait for j in trace}
        assert waits[100.0] == 0.0

    def test_simultaneous_arrivals_are_ordered_by_job_id(self):
        # Three same-instant full-machine jobs: FCFS order must be the
        # job_id tie-break, regardless of input list order.
        jobs = [
            job(2, arrival=0.0, runtime=100.0, procs=8),
            job(0, arrival=0.0, runtime=100.0, procs=8),
            job(1, arrival=0.0, runtime=100.0, procs=8),
        ]
        simulate(jobs, 8, FcfsPolicy())
        by_id = {j.job_id: j.start_time for j in jobs}
        assert by_id == {0: 0.0, 1: 100.0, 2: 200.0}

    def test_retune_stamped_at_event_time_governs_that_pass(self):
        # Two jobs arrive at t=100 as the machine frees; the retune also
        # stamped t=100 must be applied before that scheduling pass, so
        # the flipped weights pick the "low" job first.
        from repro.scheduler.policies import PriorityPolicy

        blocker = job(0, arrival=0.0, runtime=100.0, procs=8)
        high = SchedJob(job_id=1, arrival=100.0, runtime=50.0, procs=8,
                        queue="high")
        low = SchedJob(job_id=2, arrival=100.0, runtime=50.0, procs=8,
                       queue="low")
        policy = PriorityPolicy(weights={"high": 10.0, "low": 0.0})
        simulate([blocker, high, low], 8, policy,
                 retune_schedule=[(100.0, {"high": 0.0, "low": 10.0})])
        assert low.start_time == 100.0
        assert high.start_time == 150.0

    def test_same_instant_retunes_apply_in_schedule_order(self):
        from repro.scheduler.policies import PriorityPolicy

        blocker = job(0, arrival=0.0, runtime=100.0, procs=8)
        a = SchedJob(job_id=1, arrival=100.0, runtime=50.0, procs=8, queue="a")
        b = SchedJob(job_id=2, arrival=100.0, runtime=50.0, procs=8, queue="b")
        policy = PriorityPolicy(weights={})
        # Both retunes stamped t=100: the later entry wins (total order by
        # schedule index), so queue "b" ends up on top.
        simulate([blocker, a, b], 8, policy, retune_schedule=[
            (100.0, {"a": 10.0, "b": 0.0}),
            (100.0, {"a": 0.0, "b": 10.0}),
        ])
        assert b.start_time == 100.0
        assert a.start_time == 150.0

    def test_duplicate_job_ids_rejected_up_front(self):
        with pytest.raises(ValueError, match="duplicate job_id"):
            simulate([job(0), job(0, arrival=1.0)], 8, FcfsPolicy())

    def test_reruns_are_bit_identical_on_a_contended_stream(self):
        config = ClusterWorkloadConfig(
            n_jobs=400, machine_procs=32, utilization=0.95, seed=9
        )

        def run():
            jobs = generate_jobs(config)
            simulate(jobs, 32, EasyBackfillPolicy())
            return [(j.job_id, j.start_time) for j in jobs]

        assert run() == run()
