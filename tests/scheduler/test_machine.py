"""Tests for the space-shared machine model."""

import pytest

from repro.scheduler.job import SchedJob
from repro.scheduler.machine import Machine


def job(job_id=0, arrival=0.0, runtime=100.0, procs=4, **kwargs):
    return SchedJob(job_id=job_id, arrival=arrival, runtime=runtime, procs=procs, **kwargs)


class TestAllocation:
    def test_start_reserves_partition(self):
        machine = Machine(16)
        machine.start(job(procs=10), now=0.0)
        assert machine.free_procs == 6
        assert machine.used_procs == 10

    def test_cannot_oversubscribe(self):
        machine = Machine(8)
        machine.start(job(procs=6), now=0.0)
        assert not machine.can_start(job(job_id=1, procs=4))
        with pytest.raises(ValueError):
            machine.start(job(job_id=1, procs=4), now=0.0)

    def test_cannot_start_before_arrival(self):
        machine = Machine(8)
        with pytest.raises(ValueError):
            machine.start(job(arrival=100.0), now=50.0)

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            Machine(0)


class TestCompletion:
    def test_completion_releases_procs(self):
        machine = Machine(16)
        machine.start(job(job_id=0, runtime=100.0, procs=10), now=0.0)
        machine.start(job(job_id=1, runtime=200.0, procs=6), now=0.0)
        assert machine.free_procs == 0
        finished = machine.complete_until(100.0)
        assert [j.job_id for j in finished] == [0]
        assert machine.free_procs == 10
        finished = machine.complete_until(1000.0)
        assert [j.job_id for j in finished] == [1]
        assert machine.free_procs == 16

    def test_next_completion_time(self):
        machine = Machine(16)
        assert machine.next_completion_time() == float("inf")
        machine.start(job(runtime=50.0), now=10.0)
        assert machine.next_completion_time() == 60.0

    def test_wait_and_end_time(self):
        j = job(arrival=10.0, runtime=100.0)
        machine = Machine(8)
        machine.start(j, now=25.0)
        assert j.wait == 15.0
        assert j.end_time == 125.0

    def test_wait_before_start_raises(self):
        with pytest.raises(ValueError):
            _ = job().wait


class TestEarliestFit:
    def test_immediate_when_free(self):
        machine = Machine(16)
        assert machine.earliest_fit_time(16, now=5.0) == 5.0

    def test_waits_for_completions(self):
        machine = Machine(16)
        machine.start(job(job_id=0, runtime=100.0, procs=10), now=0.0)
        machine.start(job(job_id=1, runtime=300.0, procs=6), now=0.0)
        # 8 procs need job 0's partition (ends at 100).
        assert machine.earliest_fit_time(8, now=0.0) == 100.0
        # 14 procs need both (job 1 ends at 300).
        assert machine.earliest_fit_time(14, now=0.0) == 300.0

    def test_infeasible_is_inf(self):
        machine = Machine(8)
        assert machine.earliest_fit_time(100, now=0.0) == float("inf")
