"""Tests for maintenance windows in the scheduler substrate."""

import pytest

from repro.scheduler.engine import MAINTENANCE_QUEUE, maintenance_jobs, simulate
from repro.scheduler.job import SchedJob
from repro.scheduler.policies import EasyBackfillPolicy, FcfsPolicy


def job(job_id, arrival, runtime=100.0, procs=4):
    return SchedJob(job_id=job_id, arrival=arrival, runtime=runtime, procs=procs)


class TestMaintenanceJobs:
    def test_block_shape(self):
        blocks = maintenance_jobs([(1000.0, 500.0), (5000.0, 200.0)], total_procs=64)
        assert len(blocks) == 2
        assert all(b.procs == 64 for b in blocks)
        assert all(b.queue == MAINTENANCE_QUEUE for b in blocks)
        assert blocks[0].job_id != blocks[1].job_id

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            maintenance_jobs([(0.0, 0.0)], total_procs=8)


class TestOutagesDelayJobs:
    def test_jobs_wait_through_the_outage(self):
        # Machine idle; a maintenance window 100..1100; a job arriving at
        # t=200 must wait until the window ends.
        jobs = [job(0, arrival=200.0, runtime=50.0, procs=4)]
        trace = simulate(
            jobs, 8, FcfsPolicy(), maintenance=[(100.0, 1000.0)]
        )
        assert len(trace) == 1  # maintenance block filtered from output
        assert trace[0].wait == pytest.approx(900.0)

    def test_no_outage_no_wait(self):
        trace = simulate([job(0, arrival=200.0)], 8, FcfsPolicy())
        assert trace[0].wait == 0.0

    def test_outage_creates_wait_surge(self):
        # Steady single-proc stream; mid-stream outage produces a cluster
        # of long waits followed by recovery — the paper's nonstationarity.
        jobs = [job(i, arrival=10.0 * i, runtime=5.0, procs=1) for i in range(400)]
        trace = simulate(
            jobs, 8, EasyBackfillPolicy(), maintenance=[(2000.0, 500.0)]
        )
        waits = {j.submit_time: j.wait for j in trace}
        before = [waits[10.0 * i] for i in range(0, 150)]
        during = [waits[10.0 * i] for i in range(205, 245)]
        after = [waits[10.0 * i] for i in range(300, 400)]
        assert max(before) < 1.0
        assert min(during) > 50.0
        assert max(after) < 1.0

    def test_running_jobs_finish_before_outage_starts(self):
        # A job running when the outage arrives keeps its partition; the
        # outage starts only when the whole machine frees (space sharing
        # has no preemption).
        jobs = [job(0, arrival=0.0, runtime=500.0, procs=4),
                job(1, arrival=600.0, runtime=10.0, procs=4)]
        trace = simulate(jobs, 8, FcfsPolicy(), maintenance=[(100.0, 1000.0)])
        by_submit = {j.submit_time: j for j in trace}
        assert by_submit[0.0].wait == 0.0
        # Outage could not start until t=500; runs 500..1500; job 1 waits.
        assert by_submit[600.0].wait == pytest.approx(900.0)
