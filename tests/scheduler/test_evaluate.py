"""Unit tests for the oracle-regret scheduling bench.

The committed BENCH_sched.json is produced by the full scenario set; these
tests cover the machinery at miniature sizes — class assignment, scoring
arithmetic, report structure, the gate's verdict logic, and the artifact
round trip.
"""

import json

import pytest

from repro.scheduler import evaluate as ev
from repro.scheduler.job import SchedJob


TINY = ev.SchedScenario(
    name="tiny", n_jobs=150, machine_procs=16, utilization=0.9,
    seed=11, training_jobs=10, smoke=True,
)


def _job(job_id, procs, estimate):
    return SchedJob(job_id=job_id, arrival=0.0, runtime=estimate,
                    procs=procs, estimate=estimate)


class TestAssignClasses:
    def test_narrow_short_is_interactive(self):
        (job,) = ev.assign_classes([_job(0, procs=2, estimate=600.0)], 64)
        assert job.queue == ev.INTERACTIVE

    def test_wide_is_batch(self):
        (job,) = ev.assign_classes([_job(0, procs=16, estimate=600.0)], 64)
        assert job.queue == ev.BATCH

    def test_long_is_batch(self):
        (job,) = ev.assign_classes([_job(0, procs=8, estimate=5 * 3600.0)], 64)
        assert job.queue == ev.BATCH

    def test_everything_else_is_normal(self):
        (job,) = ev.assign_classes([_job(0, procs=8, estimate=3600.0)], 64)
        assert job.queue == ev.NORMAL

    def test_budgets_cover_every_assigned_class(self):
        budgets = ev.default_budgets()
        jobs = TINY.workload()
        assert {job.queue for job in jobs} <= set(budgets)
        assert budgets[ev.BATCH].deferrable
        assert not budgets[ev.INTERACTIVE].deferrable


class TestScore:
    def test_hand_computed_row(self):
        waits = {0: 100.0, 1: 0.0, 2: 2000.0}
        oracle = {0: 50.0, 1: 0.0, 2: 500.0}
        queues = {0: ev.INTERACTIVE, 1: ev.NORMAL, 2: ev.INTERACTIVE}
        row = ev._score(waits, oracle, ev.default_budgets(), queues)
        assert row["jobs"] == 3
        assert row["mean_wait_s"] == pytest.approx(700.0)
        assert row["mean_regret_s"] == pytest.approx((50.0 + 0.0 + 1500.0) / 3)
        assert row["total_regret_s"] == pytest.approx(1550.0)
        # Only job 2 (2000s on a 900s interactive budget) violates.
        assert row["violation_rate"] == pytest.approx(1 / 3)


class TestEvaluateScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return ev.evaluate_scenario(TINY)

    def test_all_policies_scored(self, result):
        expected = set(ev.BASELINE_POLICIES) | set(ev.PREDICTIVE_POLICIES)
        assert set(result["policies"]) == expected

    def test_rows_have_the_headline_metrics(self, result):
        for row in result["policies"].values():
            assert {"jobs", "mean_wait_s", "p95_wait_s", "mean_regret_s",
                    "total_regret_s", "violation_rate"} <= set(row)
            assert row["jobs"] == TINY.n_jobs

    def test_hold_policy_reports_its_holds(self, result):
        row = result["policies"]["predictive-hold"]
        assert "holds" in row and "hold_reasons" in row
        assert row["holds"] == sum(row["hold_reasons"].values())

    def test_oracle_is_a_lower_bound_for_its_own_policy_family(self, result):
        # EASY with perfect estimates can only improve on EASY with
        # inflated estimates, so EASY's regret is non-negative.
        assert result["policies"]["easy"]["mean_regret_s"] >= 0.0


class TestRunSchedBench:
    def test_rejects_bad_ratio_and_empty_scenarios(self):
        with pytest.raises(ValueError, match="max_regret_ratio"):
            ev.run_sched_bench(max_regret_ratio=0.0, artifact=None)
        no_smoke = ev.SchedScenario(
            name="x", n_jobs=10, machine_procs=8, utilization=0.5, seed=1
        )
        with pytest.raises(ValueError, match="at least one scenario"):
            ev.run_sched_bench(scenarios=[no_smoke], smoke=True, artifact=None)

    def test_report_structure_and_artifact_round_trip(self, tmp_path):
        out = tmp_path / "bench.json"
        report = ev.run_sched_bench(scenarios=[TINY], artifact=out)
        assert report["schema"] == ev.BENCH_SCHED_SCHEMA
        assert json.loads(out.read_text()) == report
        gate = report["gate"]
        assert gate["best_baseline"] in ev.BASELINE_POLICIES
        assert set(gate["predictive"]) == set(ev.PREDICTIVE_POLICIES)
        assert isinstance(gate["passed"], bool)

    def test_aggregate_is_job_weighted(self):
        report = ev.run_sched_bench(scenarios=[TINY], artifact=None)
        (entry,) = report["scenarios"]
        for name, agg in report["aggregate"].items():
            assert agg["mean_regret_s"] == pytest.approx(
                entry["policies"][name]["mean_regret_s"]
            )

    def test_smoke_filters_to_marked_scenarios(self):
        marked = TINY
        unmarked = ev.SchedScenario(
            name="skipped", n_jobs=150, machine_procs=16, utilization=0.9,
            seed=12, training_jobs=10,
        )
        report = ev.run_sched_bench(
            scenarios=[marked, unmarked], smoke=True, artifact=None
        )
        assert report["config"]["scenarios"] == ["tiny"]

    def test_default_scenarios_include_smoke_coverage(self):
        scenarios = ev.default_scenarios()
        assert any(s.smoke for s in scenarios)
        assert len({s.name for s in scenarios}) == len(scenarios)
