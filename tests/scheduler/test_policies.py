"""Tests for the scheduling policies."""

import pytest

from repro.scheduler.engine import SchedulerEngine, simulate
from repro.scheduler.job import SchedJob
from repro.scheduler.machine import Machine
from repro.scheduler.policies import EasyBackfillPolicy, FcfsPolicy, PriorityPolicy


def job(job_id, arrival=0.0, runtime=100.0, procs=4, estimate=None, queue="normal"):
    return SchedJob(
        job_id=job_id,
        arrival=arrival,
        runtime=runtime,
        procs=procs,
        estimate=estimate if estimate is not None else runtime,
        queue=queue,
    )


class TestFcfs:
    def test_head_blocks_queue(self):
        machine = Machine(8)
        machine.start(job(99, procs=6), now=0.0)
        waiting = [job(0, procs=4), job(1, procs=2)]
        # Head needs 4, only 2 free: nothing starts, even though job 1 fits.
        assert FcfsPolicy().select(waiting, machine, now=0.0) == []

    def test_starts_in_order_while_fitting(self):
        machine = Machine(8)
        waiting = [job(0, procs=4), job(1, procs=2), job(2, procs=4)]
        started = FcfsPolicy().select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [0, 1]

    def test_fcfs_waits_are_monotone_for_full_machine_jobs(self):
        # All jobs want the whole machine: strict serialization.
        jobs = [job(i, arrival=float(i), runtime=100.0, procs=8) for i in range(5)]
        trace = simulate(jobs, 8, FcfsPolicy())
        starts = sorted(j.submit_time + j.wait for j in trace)
        for a, b in zip(starts, starts[1:]):
            assert b - a == pytest.approx(100.0)


class TestEasyBackfill:
    def test_backfill_fills_holes(self):
        machine = Machine(8)
        machine.start(job(99, runtime=100.0, procs=6), now=0.0)
        # Head needs 8 (waits for the running job); a short 2-proc job can
        # backfill because it finishes before the head's shadow time (100).
        waiting = [job(0, procs=8, estimate=500.0), job(1, procs=2, runtime=50.0)]
        started = EasyBackfillPolicy().select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [1]

    def test_backfill_respects_shadow_time(self):
        machine = Machine(8)
        machine.start(job(99, runtime=100.0, procs=6), now=0.0)
        # This candidate would run past the shadow (100) and needs procs the
        # head will use: it must NOT backfill.
        waiting = [job(0, procs=8, estimate=500.0), job(1, procs=2, runtime=400.0)]
        started = EasyBackfillPolicy().select(waiting, machine, now=0.0)
        assert started == []

    def test_backfill_into_spare_procs_can_run_long(self):
        machine = Machine(8)
        machine.start(job(99, runtime=100.0, procs=6), now=0.0)
        # Head only needs 4 at shadow time; 2 procs are spare forever, so a
        # long 2-proc job may backfill without delaying the head.
        waiting = [job(0, procs=4, estimate=500.0), job(1, procs=2, runtime=400.0)]
        started = EasyBackfillPolicy().select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [1]

    def test_easy_never_delays_head_beyond_fcfs_estimate(self):
        """End-to-end: with accurate estimates, each job's EASY start is
        never later than the shadow time computed at its head moment —
        checked indirectly: EASY mean wait <= FCFS mean wait on a workload
        where backfill can only help."""
        jobs = [
            job(i, arrival=10.0 * i, runtime=200.0 if i % 3 else 800.0,
                procs=2 if i % 3 else 7)
            for i in range(60)
        ]
        fcfs = simulate([SchedJob(j.job_id, j.arrival, j.runtime, j.procs, j.estimate)
                         for j in jobs], 8, FcfsPolicy())
        easy = simulate([SchedJob(j.job_id, j.arrival, j.runtime, j.procs, j.estimate)
                         for j in jobs], 8, EasyBackfillPolicy())
        assert easy.summary().mean <= fcfs.summary().mean

    def test_small_jobs_wait_less_under_backfill(self):
        jobs = []
        for i in range(120):
            if i % 4 == 0:
                jobs.append(job(i, arrival=30.0 * i, runtime=2000.0, procs=7))
            else:
                jobs.append(job(i, arrival=30.0 * i, runtime=100.0, procs=1))
        trace = simulate(jobs, 8, EasyBackfillPolicy())
        small = [j.wait for j in trace if j.procs == 1]
        large = [j.wait for j in trace if j.procs == 7]
        assert sum(small) / len(small) < sum(large) / len(large)


class TestPriority:
    def test_weights_order_selection(self):
        machine = Machine(4)
        policy = PriorityPolicy(weights={"high": 10.0, "low": -10.0})
        waiting = [job(0, procs=4, queue="low"), job(1, procs=4, queue="high")]
        started = policy.select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [1]

    def test_first_fit_skips_blocked_high_priority(self):
        machine = Machine(4)
        machine.start(job(99, procs=2), now=0.0)
        policy = PriorityPolicy(weights={"high": 10.0, "low": -10.0})
        waiting = [job(0, procs=4, queue="high"), job(1, procs=2, queue="low")]
        started = policy.select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [1]

    def test_aging_promotes_old_jobs(self):
        policy = PriorityPolicy(weights={"high": 5.0, "low": 0.0}, aging_rate=1.0)
        old_low = job(0, arrival=0.0, queue="low")
        new_high = job(1, arrival=3600.0, queue="high")
        now = 3600.0  # old_low aged 60 minutes -> priority 60 > 5
        assert policy.effective_priority(old_low, now) > policy.effective_priority(
            new_high, now
        )

    def test_retune_changes_weights(self):
        policy = PriorityPolicy(weights={"a": 1.0})
        policy.retune({"a": -1.0, "b": 5.0})
        assert policy.weights == {"a": -1.0, "b": 5.0}

    def test_ties_break_by_arrival(self):
        machine = Machine(4)
        policy = PriorityPolicy()
        waiting = [job(1, arrival=10.0, procs=4), job(0, arrival=0.0, procs=4)]
        started = policy.select(waiting, machine, now=20.0)
        assert started[0].job_id == 0


class TestEngineRetunes:
    def test_retune_schedule_requires_priority_policy(self):
        with pytest.raises(ValueError):
            SchedulerEngine(
                Machine(8), FcfsPolicy(), retune_schedule=[(0.0, {"a": 1.0})]
            )

    def test_retune_applies_mid_run(self):
        # Before the retune, "high" beats "low"; after, the reverse.  Two
        # contention rounds with one-slot capacity expose the switch.
        jobs = [
            job(0, arrival=0.0, runtime=100.0, procs=8, queue="blocker"),
            job(1, arrival=1.0, runtime=10.0, procs=8, queue="high"),
            job(2, arrival=1.0, runtime=10.0, procs=8, queue="low"),
            job(3, arrival=1000.0, runtime=100.0, procs=8, queue="blocker"),
            job(4, arrival=1001.0, runtime=10.0, procs=8, queue="high"),
            job(5, arrival=1001.0, runtime=10.0, procs=8, queue="low"),
        ]
        policy = PriorityPolicy(weights={"high": 10.0, "low": 0.0, "blocker": 0.0})
        trace = simulate(
            jobs, 8, policy,
            retune_schedule=[(500.0, {"high": 0.0, "low": 10.0, "blocker": 0.0})],
        )
        # Round 1: high (submit 1.0) starts before low.
        round1 = sorted(
            (j for j in trace if j.submit_time == 1.0),
            key=lambda j: j.submit_time + j.wait,
        )
        assert round1[0].queue == "high"
        # Round 2: low starts before high after the retune.
        round2 = sorted(
            (j for j in trace if j.submit_time == 1001.0),
            key=lambda j: j.submit_time + j.wait,
        )
        assert round2[0].queue == "low"
