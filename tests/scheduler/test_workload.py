"""Tests for the cluster workload generator."""

import numpy as np
import pytest

from repro.scheduler.workload import ClusterWorkloadConfig, generate_jobs


class TestGeneration:
    def test_job_count_and_ordering(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=500, seed=1))
        assert len(jobs) == 500
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_procs_within_machine(self):
        config = ClusterWorkloadConfig(n_jobs=2000, machine_procs=64, seed=2)
        jobs = generate_jobs(config)
        assert all(1 <= j.procs <= 64 for j in jobs)

    def test_small_jobs_dominate(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=5000, seed=3))
        small = sum(j.procs <= 4 for j in jobs)
        assert small > len(jobs) / 2

    def test_estimates_at_least_runtime(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=1000, seed=4))
        assert all(j.estimate >= j.runtime for j in jobs)

    def test_estimates_are_inflated_on_average(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=5000, seed=5))
        inflations = [j.estimate / j.runtime for j in jobs]
        assert np.mean(inflations) > 1.5

    def test_queue_mix(self):
        config = ClusterWorkloadConfig(
            n_jobs=3000, queues=(("a", 0.5), ("b", 0.5)), seed=6
        )
        jobs = generate_jobs(config)
        share = sum(j.queue == "a" for j in jobs) / len(jobs)
        assert share == pytest.approx(0.5, abs=0.05)

    def test_utilization_controls_load(self):
        low = generate_jobs(ClusterWorkloadConfig(n_jobs=2000, utilization=0.3, seed=7))
        high = generate_jobs(ClusterWorkloadConfig(n_jobs=2000, utilization=0.9, seed=7))
        # Same work arriving faster: the high-utilization span is shorter.
        assert high[-1].arrival < low[-1].arrival

    def test_determinism(self):
        a = generate_jobs(ClusterWorkloadConfig(n_jobs=100, seed=8))
        b = generate_jobs(ClusterWorkloadConfig(n_jobs=100, seed=8))
        assert [(j.arrival, j.runtime, j.procs) for j in a] == [
            (j.arrival, j.runtime, j.procs) for j in b
        ]

    def test_runtimes_heavy_tailed(self):
        jobs = generate_jobs(ClusterWorkloadConfig(n_jobs=10_000, seed=9))
        runtimes = np.array([j.runtime for j in jobs])
        assert np.mean(runtimes) > 1.5 * np.median(runtimes)


class TestValidation:
    def test_bad_n_jobs(self):
        with pytest.raises(ValueError):
            ClusterWorkloadConfig(n_jobs=0)

    def test_bad_utilization(self):
        with pytest.raises(ValueError):
            ClusterWorkloadConfig(utilization=0.0)

    def test_bad_daily_amplitude(self):
        with pytest.raises(ValueError):
            ClusterWorkloadConfig(daily_amplitude=1.0)

    def test_queue_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ClusterWorkloadConfig(queues=(("a", 0.5), ("b", 0.2)))
