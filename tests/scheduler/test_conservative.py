"""Tests for conservative backfilling."""

import pytest

from repro.scheduler.engine import SchedulerEngine, simulate
from repro.scheduler.job import SchedJob
from repro.scheduler.machine import Machine
from repro.scheduler.policies import (
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FcfsPolicy,
)
from repro.scheduler.workload import ClusterWorkloadConfig, generate_jobs


def job(job_id, arrival=0.0, runtime=100.0, procs=4, estimate=None, queue="normal"):
    return SchedJob(
        job_id=job_id,
        arrival=arrival,
        runtime=runtime,
        procs=procs,
        estimate=estimate if estimate is not None else runtime,
        queue=queue,
    )


def fresh(jobs):
    return [SchedJob(j.job_id, j.arrival, j.runtime, j.procs, j.estimate, j.queue)
            for j in jobs]


class TestSelection:
    def test_backfills_harmless_short_job(self):
        machine = Machine(8)
        machine.start(job(99, runtime=100.0, procs=6), now=0.0)
        # Head (8 procs) waits until t=100; a 2-proc 50 s job is harmless.
        waiting = [job(0, procs=8, estimate=500.0), job(1, procs=2, runtime=50.0)]
        started = ConservativeBackfillPolicy().select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [1]

    def test_blocks_backfill_that_delays_any_reservation(self):
        machine = Machine(8)
        machine.start(job(99, runtime=100.0, procs=6), now=0.0)
        # Job 0 (8 procs) reserved at t=100; job 1 (4 procs, long) reserved
        # after job 0; job 2 (2 procs, 400 s) fits now but would overlap
        # job 0's reservation with procs job 0 needs: blocked.
        waiting = [
            job(0, procs=8, estimate=500.0),
            job(1, procs=4, estimate=500.0),
            job(2, procs=2, runtime=400.0),
        ]
        started = ConservativeBackfillPolicy().select(waiting, machine, now=0.0)
        assert started == []

    def test_plain_fcfs_progress_when_machine_free(self):
        machine = Machine(8)
        waiting = [job(0, procs=4), job(1, procs=4)]
        started = ConservativeBackfillPolicy().select(waiting, machine, now=0.0)
        assert [j.job_id for j in started] == [0, 1]

    def test_empty_queue(self):
        assert ConservativeBackfillPolicy().select([], Machine(8), now=0.0) == []


class TestEndToEnd:
    def test_never_oversubscribes(self):
        jobs = generate_jobs(
            ClusterWorkloadConfig(n_jobs=600, machine_procs=64, utilization=0.9, seed=8)
        )
        engine = SchedulerEngine(Machine(64), ConservativeBackfillPolicy())
        finished = engine.run(jobs)
        events = []
        for j in finished:
            events.append((j.start_time, 1, j.procs))
            events.append((j.end_time, 0, -j.procs))
        events.sort()
        used = 0
        for _, _, delta in events:
            used += delta
            assert 0 <= used <= 64

    def test_between_fcfs_and_easy_on_mean_wait(self):
        """The classic ordering: FCFS >= conservative >= EASY mean waits."""
        jobs = generate_jobs(
            ClusterWorkloadConfig(n_jobs=1000, machine_procs=64, utilization=0.85, seed=9)
        )
        means = {}
        for policy in (FcfsPolicy(), ConservativeBackfillPolicy(), EasyBackfillPolicy()):
            trace = simulate(fresh(jobs), 64, policy)
            means[policy.name] = trace.summary().mean
        assert means["fcfs"] >= means["conservative"] * 0.99
        assert means["conservative"] >= means["easy"] * 0.99

    def test_all_jobs_complete(self):
        jobs = [job(i, arrival=float(i * 5), procs=(i % 8) + 1) for i in range(100)]
        trace = simulate(jobs, 8, ConservativeBackfillPolicy())
        assert len(trace) == 100
