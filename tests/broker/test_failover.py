"""Breaker→promote failover: an open breaker with a configured standby
rewires the backend to a promoted follower instead of serving stale cache
entries until an operator intervenes."""

from __future__ import annotations

import asyncio

import pytest

from repro.broker import Backend, CircuitBreaker, ForecastCache, SiteSpec
from repro.broker.registry import load_sites_file, parse_site_arg
from tests.broker.conftest import FakeSite


def failover_backend(primary, standby, **kwargs):
    spec = SiteSpec(
        name=primary.name, host="127.0.0.1", port=primary.port,
        standby_host="127.0.0.1",
        standby_port=standby.port if standby is not None else None,
    )
    kwargs.setdefault("request_timeout", 0.2)
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("cache", ForecastCache(ttl=0.0))
    kwargs.setdefault(
        "breaker", CircuitBreaker(failure_threshold=2, reset_timeout=30.0)
    )
    return Backend(spec, **kwargs)


async def open_breaker(backend):
    """Drive failures until the breaker opens (primary must be down)."""
    for _ in range(backend.breaker.failure_threshold):
        quote = await backend.forecast("normal", 4)
        assert quote.source in ("stale", "none")
    assert backend.breaker.state == "open"


def test_open_breaker_promotes_standby_and_serves_live():
    async def scenario():
        async with FakeSite(name="site-a", bound=777.0) as standby:
            async with FakeSite(name="site-a", bound=777.0) as primary:
                backend = failover_backend(primary, standby)
                first = await backend.forecast("normal", 4)
                assert first.source == "live" and first.failover is False
                assert first.endpoint == f"127.0.0.1:{primary.port}"
                await primary.stop()
                await open_breaker(backend)

                quote = await backend.forecast("normal", 4)
                await backend.close()
                return backend, quote, getattr(standby, "promotions", 0)

    backend, quote, promotions = asyncio.run(scenario())
    assert promotions == 1
    assert quote.source == "live"
    assert quote.bound == 777.0
    assert quote.failover is True
    assert quote.endpoint == f"{backend.active_host}:{backend.active_port}"
    assert backend.failed_over is True
    assert backend.breaker.state == "closed"
    assert backend.metrics.failovers == {"site-a": 1}
    assert quote.provenance()["failover"] is True


def test_failover_is_single_flight():
    async def scenario():
        async with FakeSite(name="site-b") as standby:
            async with FakeSite(name="site-b") as primary:
                backend = failover_backend(primary, standby)
                await primary.stop()
                await open_breaker(backend)
                # A burst of routes over the open breaker: exactly one
                # promotion; losers degrade, the next round is all live.
                burst = await asyncio.gather(
                    *(backend.forecast("normal", 4) for _ in range(5))
                )
                settled = await asyncio.gather(
                    *(backend.forecast("normal", 4) for _ in range(3))
                )
                await backend.close()
                return burst, settled, getattr(standby, "promotions", 0)

    burst, settled, promotions = asyncio.run(scenario())
    assert promotions == 1
    assert any(q.source == "live" for q in burst)
    assert all(q.source == "live" and q.failover for q in settled)


def test_no_standby_still_degrades_to_stale_cache():
    async def scenario():
        async with FakeSite(name="site-c", bound=42.0) as primary:
            backend = failover_backend(primary, None, cache=ForecastCache(ttl=0.0))
            live = await backend.forecast("normal", 4)
            await primary.stop()
            await open_breaker(backend)
            quote = await backend.forecast("normal", 4)
            await backend.close()
            return live, quote

    live, quote = asyncio.run(scenario())
    assert live.bound == 42.0
    assert quote.source == "stale" and quote.stale
    assert quote.bound == 42.0  # last-known bound, the pre-failover behavior
    assert quote.failover is False


def test_dead_standby_degrades_but_allows_retry():
    async def scenario():
        async with FakeSite(name="site-d") as standby:
            dead_port = standby.port  # bound once, then torn down
        async with FakeSite(name="site-d") as primary:
            spec = SiteSpec(
                name="site-d", host="127.0.0.1", port=primary.port,
                standby_host="127.0.0.1", standby_port=dead_port,
            )
            backend = Backend(
                spec, request_timeout=0.2, retries=0,
                cache=ForecastCache(ttl=0.0),
                breaker=CircuitBreaker(failure_threshold=2, reset_timeout=30.0),
            )
            await primary.stop()
            await open_breaker(backend)
            quote = await backend.forecast("normal", 4)
            await backend.close()
            return backend, quote

    backend, quote = asyncio.run(scenario())
    assert quote.source in ("stale", "none")
    assert backend.failed_over is False
    assert backend._failover_in_flight is False  # a later route may retry


class TestStandbyRegistry:
    def test_parse_site_arg_with_standby(self):
        spec = parse_site_arg("sdsc=127.0.0.1:7077:normal,debug@127.0.0.1:7078")
        assert spec.port == 7077
        assert sorted(spec.queues) == ["debug", "normal"]
        assert spec.standby == "127.0.0.1:7078"

    def test_parse_site_arg_standby_port_only(self):
        spec = parse_site_arg("sdsc=127.0.0.1:7077@7078")
        assert spec.standby_host is None
        assert spec.standby == "127.0.0.1:7078"  # falls back to site host

    def test_parse_site_arg_without_standby_unchanged(self):
        spec = parse_site_arg("sdsc=127.0.0.1:7077")
        assert spec.standby is None
        assert spec.standby_port is None

    def test_parse_site_arg_bad_standby(self):
        with pytest.raises(ValueError):
            parse_site_arg("sdsc=127.0.0.1:7077@nonsense")

    def test_sites_file_standby_roundtrip(self, tmp_path):
        path = tmp_path / "sites.json"
        path.write_text(
            '{"sites": [{"name": "a", "port": 7077,'
            ' "standby": {"host": "10.0.0.2", "port": 7078}},'
            ' {"name": "b", "port": 7079}]}'
        )
        specs = load_sites_file(path)
        assert specs[0].standby == "10.0.0.2:7078"
        assert specs[1].standby is None
