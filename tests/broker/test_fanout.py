"""Fan-out edge cases against scriptable fake backends: hedge races,
all-backends-down degradation, and breaker half-open recovery.

These are the three failure shapes the broker exists to absorb; each test
drives a real :class:`~repro.broker.fanout.Backend` (pool, breaker, cache,
hedging — nothing mocked below the socket) against a :class:`FakeSite`
whose per-request latency and behavior the test scripts.
"""

from __future__ import annotations

import asyncio

from repro.broker import (
    Backend,
    CircuitBreaker,
    ForecastCache,
    RoutingBroker,
    SiteSpec,
)
from repro.scheduler.constraints import QueueLimit
from tests.broker.conftest import FakeSite


def make_backend(site, **kwargs):
    kwargs.setdefault("request_timeout", 2.0)
    kwargs.setdefault("retries", 0)
    kwargs.setdefault("cache", ForecastCache(ttl=0.0))
    return Backend(site.spec(), **kwargs)


def test_live_quote_happy_path():
    async def scenario():
        async with FakeSite(bound=321.0) as site:
            backend = make_backend(site)
            quote = await backend.forecast("normal", 4)
            await backend.close()
            return quote, site.requests

    quote, requests = asyncio.run(scenario())
    assert quote.source == "live"
    assert quote.bound == 321.0
    assert not quote.stale and not quote.hedged
    assert quote.breaker == "closed"
    assert quote.latency_ms is not None
    assert requests == 1


def test_fresh_cache_hit_serves_immediately_and_revalidates_behind_it():
    async def scenario():
        async with FakeSite(bound=77.0) as site:
            backend = make_backend(site, cache=ForecastCache(ttl=30.0))
            first = await backend.forecast("normal", 4)
            site.bound = 99.0  # the background revalidation sees this
            second = await backend.forecast("normal", 4)
            await asyncio.sleep(0.05)  # let the refresh land
            third = await backend.forecast("normal", 4)
            await backend.close()
            return first, second, third

    first, second, third = asyncio.run(scenario())
    assert (first.source, first.bound) == ("live", 77.0)
    # The hit is served instantly from cache, not blocked on the refresh...
    assert (second.source, second.bound) == ("cache", 77.0)
    assert not second.stale
    # ...and the refresh updated the entry behind it.
    assert third.bound == 99.0


def test_hedge_fires_after_delay_and_the_duplicate_wins():
    # Primary request sleeps 250 ms; the hedge (request 2) answers at once.
    delays = {1: 0.25}

    async def scenario():
        async with FakeSite(bound=55.0,
                            delay=lambda i: delays.get(i, 0.0)) as site:
            backend = make_backend(site, hedge_after=0.02)
            quote = await backend.forecast("normal", 4)
            in_use = backend.pool.in_use
            snap = backend.metrics.snapshot()
            follow_up = await backend.forecast("normal", 4)
            await backend.close()
            return quote, in_use, snap, follow_up, site.requests

    quote, in_use, snap, follow_up, requests = asyncio.run(scenario())
    assert quote.source == "live"
    assert quote.bound == 55.0
    assert quote.hedged
    assert snap["hedges"] == {"fired": 1, "won": 1}
    assert in_use == 0  # the loser's slot was released, never leaked
    assert requests >= 2  # the duplicate really went out
    assert follow_up.source == "live"  # and the backend is still usable


def test_primary_answering_just_after_the_hedge_fires_still_yields_one_result():
    async def scenario():
        # Primary answers at ~60 ms — after the 20 ms hedge launch but well
        # before the duplicate's 300 ms answer: the primary must win and
        # exactly one result is used either way.
        async with FakeSite(bound=12.0,
                            delay=lambda i: 0.06 if i == 1 else 0.3) as site:
            backend = make_backend(site, hedge_after=0.02)
            quote = await backend.forecast("normal", 4)
            snap = backend.metrics.snapshot()
            in_use = backend.pool.in_use
            await backend.close()
            return quote, snap, in_use

    quote, snap, in_use = asyncio.run(scenario())
    assert quote.source == "live"
    assert quote.bound == 12.0
    assert quote.hedged  # a duplicate was launched...
    assert snap["hedges"] == {"fired": 1, "won": 0}  # ...but the primary won
    assert in_use == 0


def test_structured_server_error_degrades_to_an_explicit_none_quote():
    async def scenario():
        async with FakeSite() as site:
            site.behavior = "error"
            backend = make_backend(site)
            quote = await backend.forecast("normal", 4)
            await backend.close()
            return quote

    quote = asyncio.run(scenario())
    assert quote.source == "none"
    assert quote.bound is None
    assert quote.stale
    assert "internal" in quote.error


def test_all_backends_down_serves_stale_cache_with_the_flag_set():
    async def scenario():
        async with FakeSite(name="a", bound=500.0) as a, \
                FakeSite(name="b", bound=300.0) as b:
            broker = RoutingBroker(
                [a.spec(), b.spec()],
                request_timeout=0.2, retries=0, cache_ttl=0.0,
            )
            healthy = await broker.route(procs=4, walltime=3600.0)
            await a.stop()
            await b.stop()
            down = await broker.route(procs=4, walltime=3600.0)
            await broker.close()
            return healthy, down

    healthy, down = asyncio.run(scenario())
    assert healthy.best.site == "b"  # 300 < 500
    assert all(q.source == "live" for q in healthy.ranked)
    # Dead sites cost accuracy, never availability: the route still answers
    # from the last-known bounds, explicitly flagged stale.
    assert down.best is not None
    assert down.best.site == "b"
    assert down.best.bound == 300.0
    assert all(q.source == "stale" and q.stale for q in down.ranked)
    assert down.to_dict()["best"]["stale"] is True


def test_breaker_opens_short_circuits_and_recovers_via_half_open_probe():
    async def scenario():
        out = {}
        async with FakeSite(bound=42.0) as site:
            backend = make_backend(
                site,
                breaker=CircuitBreaker(failure_threshold=1, reset_timeout=0.15),
            )
            out["live"] = await backend.forecast("normal", 4)
            site.behavior = "close"  # the daemon starts crashing mid-request
            out["first_failure"] = await backend.forecast("normal", 4)
            requests_when_open = site.requests
            out["short_circuit"] = await backend.forecast("normal", 4)
            out["no_dial"] = site.requests == requests_when_open
            site.behavior = "ok"  # the daemon comes back
            await asyncio.sleep(0.2)  # cooldown elapses -> half-open
            out["probe"] = await backend.forecast("normal", 4)
            out["transitions"] = dict(backend.breaker.transitions)
            await backend.close()
        return out

    out = asyncio.run(scenario())
    assert out["live"].source == "live"
    failure = out["first_failure"]
    assert failure.source == "stale" and failure.stale
    assert failure.bound == 42.0  # last-known bound, not an error
    assert failure.breaker == "open"
    short = out["short_circuit"]
    assert short.source == "stale"
    assert short.error == "breaker-open"
    assert out["no_dial"]  # an open breaker means zero network traffic
    probe = out["probe"]
    assert probe.source == "live"
    assert probe.bound == 42.0
    assert probe.breaker == "closed"
    assert out["transitions"]["open->half-open"] == 1
    assert out["transitions"]["half-open->closed"] == 1


def test_route_excludes_infeasible_queues_before_any_network_traffic():
    async def scenario():
        async with FakeSite(name="tiny") as site:
            spec = SiteSpec(
                name="tiny", host="127.0.0.1", port=site.port,
                queues={"small": QueueLimit(max_procs=8)},
            )
            broker = RoutingBroker([spec], request_timeout=0.2, retries=0)
            decision = await broker.route(procs=64)
            await broker.close()
            return decision, site.requests

    decision, requests = asyncio.run(scenario())
    assert requests == 0  # screened out before a single byte went out
    assert decision.ranked == []
    assert decision.best is None
    assert decision.infeasible[0]["queue"] == "small"
    assert "max_procs 8" in decision.infeasible[0]["reason"]
