"""Circuit breaker state machine: closed -> open -> half-open -> closed."""

from __future__ import annotations

import pytest

from repro.broker import CircuitBreaker
from repro.broker.breaker import CLOSED, HALF_OPEN, OPEN


class Clock:
    """Injectable monotonic clock so transitions need no real sleeping."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=3, reset=2.0):
    clock = Clock()
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout=reset, clock=clock
    )
    return breaker, clock


def test_opens_after_consecutive_failures():
    breaker, _ = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    assert breaker.allow_request()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow_request()
    assert breaker.transitions == {"closed->open": 1}


def test_success_resets_the_consecutive_count():
    breaker, _ = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # failures were never consecutive


def test_half_open_admits_exactly_one_probe():
    breaker, clock = make(threshold=1, reset=2.0)
    breaker.record_failure()
    assert not breaker.allow_request()
    clock.advance(2.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow_request()  # the single probe
    assert not breaker.allow_request()  # concurrent caller falls back to cache


def test_probe_success_closes():
    breaker, clock = make(threshold=1, reset=2.0)
    breaker.record_failure()
    clock.advance(2.0)
    assert breaker.allow_request()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow_request()
    assert breaker.transitions == {
        "closed->open": 1,
        "open->half-open": 1,
        "half-open->closed": 1,
    }


def test_probe_failure_reopens_and_restarts_the_cooldown():
    breaker, clock = make(threshold=1, reset=2.0)
    breaker.record_failure()
    clock.advance(2.0)
    assert breaker.allow_request()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(1.9)  # cooldown restarted at the probe's failure
    assert breaker.state == OPEN
    clock.advance(0.1)
    assert breaker.state == HALF_OPEN


def test_rejects_degenerate_configuration():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout=0.0)
