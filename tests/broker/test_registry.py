"""Site spec parsing (`--site name=host:port[:queues]`) and the JSON registry."""

from __future__ import annotations

import json

import pytest

from repro.broker import SiteSpec, load_sites_file, parse_site_arg
from repro.broker.registry import DEFAULT_QUEUE


def test_parse_minimal_site_arg():
    spec = parse_site_arg("sdsc=10.0.0.5:7077")
    assert (spec.name, spec.host, spec.port) == ("sdsc", "10.0.0.5", 7077)
    assert list(spec.queues) == [DEFAULT_QUEUE]


def test_parse_site_arg_with_queues_and_default_host():
    spec = parse_site_arg("a=:7077:normal,debug")
    assert spec.host == "127.0.0.1"
    assert sorted(spec.queues) == ["debug", "normal"]


@pytest.mark.parametrize("bad", ["nohost", "=h:1", "a=h", "a=h:xx", "a=h:0"])
def test_bad_site_args_are_rejected(bad):
    with pytest.raises(ValueError):
        parse_site_arg(bad)


def test_site_spec_validates_itself():
    with pytest.raises(ValueError):
        SiteSpec(name="", host="h", port=7077)
    with pytest.raises(ValueError):
        SiteSpec(name="a", host="h", port=7077, queues={})


def test_load_sites_file_round_trip(tmp_path):
    path = tmp_path / "sites.json"
    path.write_text(json.dumps({"sites": [
        {"name": "a", "host": "h1", "port": 7071,
         "queues": {"normal": {"max_procs": 128, "max_runtime": 86400}}},
        {"name": "b", "port": 7072},
    ]}))
    specs = load_sites_file(path)
    assert [spec.name for spec in specs] == ["a", "b"]
    assert specs[0].queues["normal"].max_procs == 128
    assert specs[1].host == "127.0.0.1"
    assert list(specs[1].queues) == [DEFAULT_QUEUE]


def test_duplicate_site_names_are_rejected(tmp_path):
    path = tmp_path / "sites.json"
    path.write_text(json.dumps({"sites": [
        {"name": "a", "port": 7071},
        {"name": "a", "port": 7072},
    ]}))
    with pytest.raises(ValueError, match="duplicate"):
        load_sites_file(path)


def test_empty_registry_is_rejected(tmp_path):
    path = tmp_path / "sites.json"
    path.write_text(json.dumps({"sites": []}))
    with pytest.raises(ValueError):
        load_sites_file(path)
