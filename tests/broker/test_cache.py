"""Stale-while-revalidate cache: freshness window, stale lookups, LRU bound."""

from __future__ import annotations

import pytest

from repro.broker import ForecastCache


class Clock:
    def __init__(self):
        self.now = 50.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_fresh_within_ttl_then_stale_but_never_forgotten():
    clock = Clock()
    cache = ForecastCache(ttl=0.5, clock=clock)
    cache.put(("normal", 4), 1234.0)
    hit = cache.fresh(("normal", 4))
    assert hit is not None and hit.value == 1234.0 and hit.fresh
    clock.advance(0.6)
    assert cache.fresh(("normal", 4)) is None  # too old to serve fresh
    hit = cache.lookup(("normal", 4))  # ...but still there for degradation
    assert hit is not None
    assert hit.value == 1234.0
    assert not hit.fresh
    assert hit.age == pytest.approx(0.6)


def test_zero_ttl_disables_freshness_but_keeps_the_stale_fallback():
    cache = ForecastCache(ttl=0.0, clock=Clock())
    cache.put("k", 7.0)
    assert cache.fresh("k") is None
    assert cache.lookup("k").value == 7.0


def test_missing_key_is_a_clean_miss():
    cache = ForecastCache()
    assert cache.lookup("never-seen") is None
    assert cache.fresh("never-seen") is None


def test_lru_eviction_prefers_recently_used_entries():
    cache = ForecastCache(ttl=10.0, max_entries=2, clock=Clock())
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.lookup("a").value == 1  # touch: "a" is now most recent
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.lookup("b") is None
    assert cache.lookup("a").value == 1
    assert cache.lookup("c").value == 3
    assert len(cache) == 2


def test_overwrite_resets_the_age():
    clock = Clock()
    cache = ForecastCache(ttl=1.0, clock=clock)
    cache.put("k", 1.0)
    clock.advance(5.0)
    cache.put("k", 2.0)
    hit = cache.fresh("k")
    assert hit is not None
    assert hit.value == 2.0
    assert hit.age == 0.0


def test_rejects_degenerate_capacity():
    with pytest.raises(ValueError):
        ForecastCache(max_entries=0)
