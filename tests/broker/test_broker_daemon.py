"""The broker daemon's wire surface: NDJSON ops, HTTP GET, ``/metrics``.

Spawns a real ``python -m repro broker`` subprocess whose sites point at a
dead port, which exercises the whole protocol path (including graceful
``none`` quotes) without needing live forecast daemons.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.server import read_port_file


def spawn_broker(state_dir, *extra_args):
    args = [
        sys.executable, "-m", "repro", "broker",
        "--host", "127.0.0.1", "--port", "0",
        "--state-dir", str(state_dir),
        *extra_args,
    ]
    return subprocess.Popen(
        args, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


@pytest.fixture
def broker_port(tmp_path):
    """A running broker subprocess routing over two dead sites; yields port."""
    state_dir = tmp_path / "broker"
    state_dir.mkdir()
    process = spawn_broker(
        state_dir,
        "--site", "a=127.0.0.1:1",
        "--site", "b=127.0.0.1:1",
        "--request-timeout", "0.05",
        "--retries", "0",
    )
    try:
        yield read_port_file(state_dir)
    finally:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=10.0)
            except Exception:
                process.kill()
                process.wait()


def ndjson(port, *payloads):
    """One connection, pipelined requests, parsed replies in order."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        stream = sock.makefile("rwb")
        replies = []
        for payload in payloads:
            stream.write(json.dumps(payload).encode() + b"\n")
            stream.flush()
            replies.append(json.loads(stream.readline()))
        return replies


def test_ndjson_ops_and_error_model(broker_port):
    healthz, sites, route, unknown, bad = ndjson(
        broker_port,
        {"op": "healthz", "id": 1},
        {"op": "sites"},
        {"op": "route", "procs": 2, "walltime": 600},
        {"op": "frobnicate"},
        {"op": "route", "procs": 0},
    )
    assert healthz["ok"] and healthz["id"] == 1
    assert healthz["result"]["status"] == "ok"
    assert healthz["result"]["sites"] == 2

    names = [site["name"] for site in sites["result"]["sites"]]
    assert names == ["a", "b"]

    decision = route["result"]
    assert decision["best"] is None  # both sites dead, no history anywhere
    assert len(decision["ranked"]) == 2
    assert all(q["source"] == "none" for q in decision["ranked"])
    assert all(q["stale"] for q in decision["ranked"])

    assert not unknown["ok"]
    assert unknown["error"]["code"] == "unknown-op"
    assert not bad["ok"]
    assert bad["error"]["code"] == "bad-request"


def test_describe_and_metrics_ops(broker_port):
    describe, metrics = ndjson(
        broker_port, {"op": "describe"}, {"op": "metrics"}
    )
    assert "a: 127.0.0.1:1" in describe["result"]["text"]
    snapshot = metrics["result"]
    assert "routes" in snapshot and "quote_sources" in snapshot


def test_http_route_sites_and_404(broker_port):
    base = f"http://127.0.0.1:{broker_port}"
    with urllib.request.urlopen(f"{base}/route?procs=2&walltime=600",
                                timeout=10.0) as response:
        payload = json.loads(response.read())
    assert payload["ok"]
    assert payload["result"]["best"] is None
    assert len(payload["result"]["ranked"]) == 2

    with urllib.request.urlopen(f"{base}/sites", timeout=10.0) as response:
        sites = json.loads(response.read())
    assert [s["name"] for s in sites["result"]["sites"]] == ["a", "b"]

    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(f"{base}/nope", timeout=10.0)
    assert err.value.code == 404


def test_http_metrics_is_parseable_prometheus_text(broker_port):
    # Drive one route first so the counters are non-trivial.
    ndjson(broker_port, {"op": "route", "procs": 2})
    url = f"http://127.0.0.1:{broker_port}/metrics"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        body = response.read().decode()
    lines = [line for line in body.splitlines() if line.strip()]
    assert lines
    # The scrape contract: every line is a comment or a bmbp_ family.
    assert all(
        line.startswith("#") or line.startswith("bmbp_") for line in lines
    )
    samples = {line.split(" ")[0].partition("{")[0]
               for line in lines if not line.startswith("#")}
    assert "bmbp_broker_routes_total" in samples
    assert "bmbp_broker_quotes_total" in samples
    for line in lines:
        if line.startswith("bmbp_broker_routes_total "):
            assert float(line.split(" ")[1]) >= 1.0


def test_route_cli_against_the_daemon(broker_port):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "route",
         "--port", str(broker_port), "--procs", "2", "--json"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 1  # no usable bound from dead sites
    payload = json.loads(result.stdout)
    assert payload["best"] is None
    assert len(payload["ranked"]) == 2


def test_broker_cli_requires_sites():
    result = subprocess.run(
        [sys.executable, "-m", "repro", "broker"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 2
    assert "--site" in result.stderr
