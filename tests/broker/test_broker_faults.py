"""Fault injection at the ``broker.request`` hook: a backend crash
mid-fan-out must degrade one quote, corrupt nothing, and leak no
connection slot (ISSUE satellite: BMBP_FAULTS covers the broker too)."""

from __future__ import annotations

import asyncio

from repro.broker import RoutingBroker
from repro.verify import faults
from repro.verify.faults import scenario_broker_backend_crash
from tests.broker.conftest import FakeSite


def test_registered_scenario_passes(tmp_path):
    details = scenario_broker_backend_crash(tmp_path)
    assert details["ranked_intact"]
    assert details["slots_leaked"] == 0
    assert details["recovered_all_live"]


def test_drop_fault_degrades_one_quote_without_leaking_a_slot():
    try:
        async def scenario():
            async with FakeSite(name="solo", bound=88.0) as site:
                broker = RoutingBroker(
                    [site.spec()],
                    request_timeout=0.3, retries=0, cache_ttl=0.0,
                )
                clean = await broker.route(procs=2)
                faults.install("broker.request:drop@1")
                dropped = await broker.route(procs=2)
                faults.reset()
                after = await broker.route(procs=2)
                in_use = broker.backends["solo"].pool.in_use
                await broker.close()
                return clean, dropped, after, in_use

        clean, dropped, after, in_use = asyncio.run(scenario())
    finally:
        faults.reset()

    assert clean.best.source == "live"
    assert clean.best.bound == 88.0
    quote = dropped.ranked[0]
    assert quote.source == "stale" and quote.stale
    assert quote.bound == 88.0  # the last-known bound, uncorrupted
    assert "drop" in quote.error
    assert after.best.source == "live"  # the connection slot came back
    assert in_use == 0
