"""Feasibility filtering and the explicit total order on quotes."""

from __future__ import annotations

from repro.broker import RouteDecision, SiteSpec, feasible_queues, rank_quotes
from repro.broker.fanout import SiteQuote
from repro.scheduler.constraints import QueueLimit


def quote(site="a", queue="normal", bound=100.0, source="live", age=0.0,
          stale=False):
    return SiteQuote(
        site=site, queue=queue, procs=4, bound=bound, source=source,
        stale=stale, age_s=age, breaker="closed",
    )


def test_feasibility_excludes_violated_limits_with_reasons():
    spec = SiteSpec(
        name="a", host="h", port=7077,
        queues={
            "small": QueueLimit(max_procs=8),
            "short": QueueLimit(max_runtime=1800.0),
            "wide": QueueLimit(),
        },
    )
    feasible, infeasible = feasible_queues(spec, procs=16, walltime=3600.0)
    assert feasible == ["wide"]
    by_queue = {record["queue"]: record["reason"] for record in infeasible}
    assert set(by_queue) == {"small", "short"}
    assert "max_procs 8" in by_queue["small"]
    assert "max_runtime 1800" in by_queue["short"]
    assert all(record["site"] == "a" for record in infeasible)


def test_everything_feasible_when_limits_are_unset():
    spec = SiteSpec(name="a", host="h", port=7077)
    feasible, infeasible = feasible_queues(spec, procs=4096, walltime=1e9)
    assert feasible == ["normal"]
    assert infeasible == []


def test_rank_orders_by_bound_first():
    ranked = rank_quotes([
        quote(site="b", bound=200.0),
        quote(site="a", bound=50.0),
        quote(site="c", bound=120.0),
    ])
    assert [q.site for q in ranked] == ["a", "c", "b"]


def test_equal_bounds_prefer_fresher_source_then_age_then_name():
    stale_q = quote(site="a", bound=100.0, source="stale", age=9.0, stale=True)
    cached = quote(site="m", bound=100.0, source="cache", age=0.1)
    live_q = quote(site="z", bound=100.0, source="live")
    ranked = rank_quotes([stale_q, cached, live_q])
    assert [q.source for q in ranked] == ["live", "cache", "stale"]
    # Age breaks a same-source tie...
    young = quote(site="b", bound=100.0, source="stale", age=1.0, stale=True)
    assert [q.site for q in rank_quotes([stale_q, young])] == ["b", "a"]
    # ...and site name breaks a same-age tie, deterministically.
    assert [q.site for q in rank_quotes([quote(site="b"), quote(site="a")])] \
        == ["a", "b"]


def test_unbounded_quotes_rank_last_but_stay_in_the_response():
    dead = SiteQuote(
        site="dead", queue="normal", procs=4, bound=None, source="none",
        stale=True, age_s=None, breaker="open", error="down",
    )
    ranked = rank_quotes([dead, quote(site="a", bound=99999.0)])
    assert [q.site for q in ranked] == ["a", "dead"]
    decision = RouteDecision(procs=4, walltime=None, ranked=ranked)
    assert decision.best is not None
    assert decision.best.site == "a"


def test_best_is_none_when_nothing_has_a_bound():
    dead = SiteQuote(
        site="dead", queue="normal", procs=4, bound=None, source="none",
        stale=True, age_s=None, breaker="open", error="down",
    )
    decision = RouteDecision(procs=4, walltime=None, ranked=rank_quotes([dead]))
    assert decision.best is None
    payload = decision.to_dict()
    assert payload["best"] is None
    assert len(payload["ranked"]) == 1
    assert payload["ranked"][0]["source"] == "none"
    assert payload["ranked"][0]["error"] == "down"
