"""Fixtures for the broker test suite.

Unit and integration tests drive the fan-out machinery against in-process
fake forecast daemons (:class:`FakeSite`) so failure modes — slow answers,
crashes, protocol errors — are scriptable per request.  The daemon and
smoke tests spawn real subprocesses instead; the session fixture
guarantees those children can import ``repro`` regardless of how pytest
itself was launched.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

import pytest

import repro


@pytest.fixture(scope="session", autouse=True)
def _subprocess_can_import_repro():
    """Prepend the repro source root to PYTHONPATH for spawned daemons."""
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )


class FakeSite:
    """In-loop fake forecast daemon with scriptable latency and failures.

    ``behavior`` is consulted per request: ``ok`` answers with ``bound``,
    ``error`` returns a structured protocol error, and ``close`` drops the
    connection without answering (a mid-request crash, as the client sees
    it).  ``delay`` is seconds before answering — or an ``f(request_index)``
    callable, which is how the hedge tests make the primary connection slow
    and the duplicate's fast.  Async context manager; binds an ephemeral
    port on enter.
    """

    def __init__(self, name: str = "fake", bound: float = 1000.0, delay=0.0):
        self.name = name
        self.bound = bound
        self.delay = delay
        self.behavior = "ok"
        self.requests = 0
        self.port = None
        self._server = None
        self._writers = set()

    async def __aenter__(self) -> "FakeSite":
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    def spec(self):
        from repro.broker import SiteSpec

        return SiteSpec(name=self.name, host="127.0.0.1", port=self.port)

    async def stop(self) -> None:
        """Stop listening AND reset live connections (a real process death
        kills established sockets too, not just the accept queue)."""
        if self._server is None:
            return
        self._server.close()
        for writer in list(self._writers):
            writer.transport.abort()
        try:
            await self._server.wait_closed()
        except asyncio.CancelledError:
            raise
        except Exception:
            pass
        self._server = None

    async def _handle(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self.requests += 1
                delay = (
                    self.delay(self.requests)
                    if callable(self.delay)
                    else self.delay
                )
                if delay:
                    await asyncio.sleep(delay)
                if self.behavior == "close":
                    break
                if self.behavior == "error":
                    payload = {
                        "ok": False,
                        "error": {"code": "internal", "message": "boom"},
                    }
                else:
                    request = json.loads(line)
                    if request.get("op") == "promote":
                        # Answer like a warm follower: promotion succeeds.
                        self.promotions = getattr(self, "promotions", 0) + 1
                        payload = {
                            "ok": True,
                            "result": {"promoted": True, "role": "primary",
                                       "seq": 0, "caught_up": 0},
                        }
                    else:
                        payload = {
                            "ok": True,
                            "result": {
                                "queue": request.get("queue", "normal"),
                                "bound": self.bound,
                            },
                        }
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
