"""End-to-end smoke: three real forecast daemons, ranked routing, one kill.

The three sites get cleanly separated wait scales (~100 s, ~300 s, ~600 s)
so the ranking is deterministic; the daemons run the fast-training,
median-bound configuration so ~16 jobs of history is enough to quote.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.broker import RoutingBroker, SiteSpec
from repro.server import ForecastClient, read_port_file, spawn_daemon

#: Per-site base wait; site "a" is consistently the fastest queue.
BASE_WAITS = (100.0, 300.0, 600.0)
JOBS_PER_SITE = 16


@pytest.fixture
def three_sites(tmp_path):
    """Three trained daemons; yields ([SiteSpec...], [Popen...])."""
    processes = []
    specs = []
    try:
        for index, base in enumerate(BASE_WAITS):
            name = "abc"[index]
            state_dir = tmp_path / name
            state_dir.mkdir()
            processes.append(spawn_daemon(
                state_dir,
                extra_args=[
                    "--training-jobs", "5", "--epoch", "0", "--no-bins",
                    "--quantile", "0.5", "--confidence", "0.8",
                ],
            ))
            port = read_port_file(state_dir)
            with ForecastClient("127.0.0.1", port) as client:
                client.wait_until_up()
                for i in range(JOBS_PER_SITE):
                    submit = i * 500.0
                    client.submit(f"j{i}", "normal", 4, now=submit)
                    client.start(f"j{i}", now=submit + base + (i % 5) * 10.0)
            specs.append(SiteSpec(name=name, host="127.0.0.1", port=port))
        yield specs, processes
    finally:
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=10.0)
                except Exception:
                    process.kill()
                    process.wait()


def test_routes_rank_by_bound_and_survive_a_dead_site(three_sites):
    specs, processes = three_sites
    broker = RoutingBroker(
        specs,
        request_timeout=1.0, retries=0, cache_ttl=0.0,
        breaker_reset=30.0,  # stays open for the post-kill assertions
    )

    async def drive():
        out = {"healthy": [], "degraded": []}
        for _ in range(5):
            out["healthy"].append(await broker.route(procs=4, walltime=3600.0))
        processes[0].kill()  # site "a" dies mid-run
        processes[0].wait()
        for _ in range(8):
            out["degraded"].append(await broker.route(procs=4, walltime=3600.0))
        await broker.close()
        return out

    out = asyncio.run(drive())

    for decision in out["healthy"]:
        assert decision.best is not None
        assert decision.best.site == "a"  # lowest waits -> lowest bound
        bounds = [quote.bound for quote in decision.ranked]
        assert bounds == sorted(bounds)
        assert all(quote.source == "live" for quote in decision.ranked)
        assert [quote.site for quote in decision.ranked] == ["a", "b", "c"]

    # Not a single failed route after the kill: the dead site degrades to
    # its last-known bound while the survivors keep answering live.
    assert len(out["degraded"]) == 8
    for decision in out["degraded"]:
        assert decision.best is not None
    last = out["degraded"][-1]
    by_site = {quote.site: quote for quote in last.ranked}
    assert by_site["a"].source == "stale" and by_site["a"].stale
    assert by_site["b"].source == "live"
    assert by_site["c"].source == "live"
    assert broker.backends["a"].breaker.state == "open"


def test_route_cli_in_process_with_site_specs(three_sites, capsys):
    from repro.cli import main

    specs, _processes = three_sites
    argv = ["route", "--procs", "4", "--walltime", "3600", "--json"]
    for spec in specs:
        argv += ["--site", f"{spec.name}=127.0.0.1:{spec.port}"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["best"]["site"] == "a"
    assert [quote["site"] for quote in payload["ranked"]] == ["a", "b", "c"]
    assert payload["infeasible"] == []
