"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.workloads.trace import Trace


@pytest.fixture(scope="session", autouse=True)
def _isolated_replay_cache(tmp_path_factory):
    """Point the persistent replay cache at a per-session temp directory.

    Keeps the suite hermetic: a stale entry from an older code version in
    the user's real cache must never feed a test, and a test run must not
    pollute the user's cache.  Within the session the cache still works,
    which is itself test coverage for the warm path.
    """
    if "BMBP_CACHE_DIR" not in os.environ:
        os.environ["BMBP_CACHE_DIR"] = str(tmp_path_factory.mktemp("bmbp-cache"))


@pytest.fixture
def rng():
    """Deterministic RNG for statistical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def lognormal_sample(rng):
    """A moderately heavy-tailed i.i.d. wait sample."""
    return rng.lognormal(mean=5.0, sigma=1.5, size=2000)


def make_trace(waits, start=0.0, gap=60.0, procs=None, queue="q"):
    """A simple trace with regular arrivals (helper, not a fixture)."""
    n = len(waits)
    submit = [start + i * gap for i in range(n)]
    procs = procs if procs is not None else [1] * n
    return Trace.from_arrays(submit, list(waits), procs=procs, queue=queue, name="test")


@pytest.fixture
def small_trace(rng):
    """A 500-job stationary trace with exponential-ish waits."""
    waits = rng.lognormal(mean=4.0, sigma=1.0, size=500)
    return make_trace(waits)
