"""Integration tests for the experiment harness.

These run every table/figure end to end at a tiny scale — checking
structure, bookkeeping, and the qualitative properties that must hold at
any scale — not the paper-level numbers (those need the default scale and
live in the benchmarks).
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    run_figure1,
    run_figure2,
    run_latency,
    run_table1,
    run_table3,
    run_table4,
    run_table5,
    run_table8,
)
from repro.experiments.bin_tables import BIN_LABELS
from repro.experiments.runner import (
    clear_caches,
    make_predictors,
    run_queue,
    table3_specs,
    trace_for,
)
from repro.workloads.spec import spec_for

#: Small but statistically meaningful: every queue gets >= 600 jobs.
TINY = ExperimentConfig(scale=0.01, seed=5, min_jobs=600)


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestRunner:
    def test_trace_cache_returns_same_object(self):
        spec = spec_for("llnl", "all")
        assert trace_for(spec, TINY) is trace_for(spec, TINY)

    def test_run_queue_cache(self):
        a = run_queue("llnl", "all", TINY)
        b = run_queue("llnl", "all", TINY)
        assert a is b

    def test_make_predictors_are_fresh(self):
        a = make_predictors(TINY)
        b = make_predictors(TINY)
        assert a["bmbp"] is not b["bmbp"]
        assert set(a) == {"bmbp", "logn-notrim", "logn-trim"}

    def test_table3_specs_order_and_count(self):
        specs = table3_specs()
        assert len(specs) == 32
        assert specs[0].machine == "datastar"


class TestTable1:
    def test_rows_and_calibration(self):
        rows = run_table1(TINY)
        assert len(rows) == 39
        for row in rows:
            if row.spec.key == ("lanl", "short"):
                # The injected end-of-log surge (the paper's BMBP failure
                # case) deliberately blows up this queue's mean.
                continue
            # At tiny job counts the capped tail stretch can undershoot the
            # published mean by several percent; the benchmarks check the
            # default-scale calibration much more tightly.
            assert row.mean_error < 0.15
            assert row.median_error < 0.10 or row.spec.median <= 10


class TestTables3And4:
    def test_structure(self):
        rows = run_table3(TINY)
        assert len(rows) == 32
        for row in rows:
            for method in ("bmbp", "logn-notrim", "logn-trim"):
                fraction = row.fraction(method)
                assert math.isnan(fraction) or 0.0 <= fraction <= 1.0

    def test_bmbp_mostly_correct_even_at_tiny_scale(self):
        rows = run_table3(TINY)
        correct = sum(not row.failed("bmbp") for row in rows)
        assert correct >= 26  # >80% of queues

    def test_table4_shares_replays_with_table3(self):
        rows3 = run_table3(TINY)
        rows4 = run_table4(TINY)
        assert rows4[0].results is rows3[0].results

    def test_winner_is_a_correct_method(self):
        for row in run_table3(TINY):
            winner = row.winner()
            if winner is not None:
                assert not row.failed(winner)


class TestBinTables:
    def test_structure_matches_registry(self):
        rows = run_table5(TINY)
        assert len(rows) == 27
        for row in rows:
            assert set(row.cells) == set(BIN_LABELS)
            for label, cell in row.cells.items():
                present = row.spec.table5_bins[BIN_LABELS.index(label)]
                if not present:
                    # Bins the paper marked "-" stay under threshold.
                    assert cell is None

    def test_fractions_in_range(self):
        for row in run_table5(TINY):
            for label in BIN_LABELS:
                fraction = row.fraction("bmbp", label)
                if fraction is not None and not math.isnan(fraction):
                    assert 0.0 <= fraction <= 1.0


class TestTable8:
    def test_thirteen_two_hour_rows(self):
        rows = run_table8(TINY)
        assert [row.hour for row in rows] == list(range(0, 25, 2))

    def test_quantile_ladder_is_ordered(self):
        rows = run_table8(TINY)
        for row in rows:
            q25 = row.bounds[".25 quantile (lower)"]
            q50 = row.bounds[".5 quantile"]
            q75 = row.bounds[".75 quantile"]
            q95 = row.bounds[".95 quantile"]
            values = [q25, q50, q75, q95]
            present = [v for v in values if v is not None]
            assert present == sorted(present)


class TestFigures:
    def test_figure1_two_sites_with_series(self):
        series = run_figure1(TINY)
        assert [s.label for s in series] == ["datastar/normal", "tacc2/normal"]
        for s in series:
            assert s.times.size > 0
            assert np.all(s.bounds > 0)

    def test_figure2_inversion_present(self):
        # Needs enough 17-64 jobs for a bound to exist by June; use a
        # slightly larger scale than the other smoke tests.
        config = ExperimentConfig(scale=0.08, seed=5, min_jobs=600)
        result = run_figure2(config)
        assert result.inversion_fraction() > 0.5

    def test_figure2_sampling(self):
        config = ExperimentConfig(scale=0.08, seed=5, min_jobs=600)
        samples = run_figure2(config).sampled("1-4", n_samples=10)
        assert 0 < len(samples) <= 10


class TestLatency:
    def test_latency_rows(self):
        rows = run_latency(TINY, n_cycles=2000)
        assert {row.method for row in rows} == {"bmbp", "logn-notrim", "logn-trim"}
        for row in rows:
            assert row.mean_us > 0
            # The paper's bar: 8 ms on 2006 hardware.  Anything modern
            # should beat it comfortably.
            assert row.mean_ms < 8.0
