"""Tests for the quantile/confidence sensitivity experiment."""

import pytest

from repro.experiments.runner import ExperimentConfig, clear_caches
from repro.experiments.sensitivity import (
    CONFIDENCE_GRID,
    QUANTILE_GRID,
    SENSITIVITY_QUEUES,
    render,
    run_sensitivity,
)

TINY = ExperimentConfig(scale=0.01, seed=5, min_jobs=600)


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestGrid:
    def test_full_grid_produced(self):
        rows = run_sensitivity(TINY)
        expected = len(SENSITIVITY_QUEUES) * len(QUANTILE_GRID) * len(CONFIDENCE_GRID)
        assert len(rows) == expected

    def test_coverage_tracks_quantile(self):
        rows = run_sensitivity(TINY)
        # Per queue and confidence, coverage is non-decreasing in quantile
        # (allowing small sample noise).
        for machine, queue in SENSITIVITY_QUEUES:
            for confidence in CONFIDENCE_GRID:
                series = [
                    row.fraction_correct
                    for row in rows
                    if (row.machine, row.queue) == (machine, queue)
                    and row.confidence == confidence
                ]
                for a, b in zip(series, series[1:]):
                    assert b >= a - 0.03

    def test_most_combinations_correct(self):
        rows = run_sensitivity(TINY)
        correct = sum(row.correct for row in rows)
        assert correct >= 0.8 * len(rows)

    def test_higher_quantile_means_looser_ratio(self):
        rows = run_sensitivity(TINY)
        for machine, queue in SENSITIVITY_QUEUES:
            low = next(r for r in rows if (r.machine, r.queue) == (machine, queue)
                       and r.quantile == 0.5 and r.confidence == 0.95)
            high = next(r for r in rows if (r.machine, r.queue) == (machine, queue)
                        and r.quantile == 0.95 and r.confidence == 0.95)
            assert high.median_ratio < low.median_ratio

    def test_render(self):
        text = render(run_sensitivity(TINY))
        assert "Sensitivity" in text
        assert "llnl/all" in text
