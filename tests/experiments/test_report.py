"""Tests for the report rendering helpers."""

import pytest

from repro.experiments.report import format_cell, render_table, write_csv


class TestFormatCell:
    def test_plain_value(self):
        assert format_cell(0.957) == "0.96"
        assert format_cell(0.957, precision=3) == "0.957"

    def test_failed_marker(self):
        assert format_cell(0.91, failed=True) == "0.91*"

    def test_winner_brackets(self):
        assert format_cell(0.97, winner=True) == "[0.97]"

    def test_failed_winner_combination(self):
        assert format_cell(0.91, failed=True, winner=True) == "[0.91*]"

    def test_missing_value(self):
        assert format_cell(None) == "-"
        assert format_cell(None, failed=True) == "-"

    def test_scientific(self):
        assert format_cell(0.000123, scientific=True) == "1.23e-04"


class TestRenderTable:
    def test_alignment_and_structure(self):
        text = render_table(
            ["name", "value"],
            [["a", "1"], ["long-name", "23"]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        # All body lines equal width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1
        assert "long-name" in lines[-1]

    def test_no_title(self):
        text = render_table(["a"], [["x"]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "a"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_numeric_cells_right_aligned(self):
        text = render_table(["q", "val"], [["x", "1"], ["y", "100"]])
        lines = text.splitlines()
        assert lines[-2].endswith("  1")
        assert lines[-1].endswith("100")


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content == ["a,b", "1,2", "3,4"]
