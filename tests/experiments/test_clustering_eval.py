"""Tests for the grouping-strategy evaluation."""

import math

import pytest

from repro.experiments.clustering_eval import (
    CLUSTERING_QUEUES,
    STRATEGIES,
    render,
    run_clustering_eval,
)
from repro.experiments.runner import ExperimentConfig, clear_caches

TINY = ExperimentConfig(scale=0.02, seed=5, min_jobs=1200)


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestClusteringEval:
    def test_full_grid(self):
        rows = run_clustering_eval(TINY)
        assert len(rows) == len(CLUSTERING_QUEUES) * len(STRATEGIES)

    def test_every_strategy_quotes_bounds(self):
        for row in run_clustering_eval(TINY):
            assert row.n_evaluated > 500
            assert not math.isnan(row.fraction_correct)

    def test_coverage_reasonable_everywhere(self):
        for row in run_clustering_eval(TINY):
            assert row.fraction_correct >= 0.90

    def test_group_counts(self):
        rows = run_clustering_eval(TINY)
        by = {(r.machine, r.queue, r.strategy): r for r in rows}
        for machine, queue in CLUSTERING_QUEUES:
            assert by[(machine, queue, "population")].n_groups == 1
            assert by[(machine, queue, "fixed-bins")].n_groups >= 2
            assert by[(machine, queue, "clustered")].n_groups >= 1

    def test_render(self):
        text = render(run_clustering_eval(TINY))
        assert "Grouping strategies" in text
        assert "clustered" in text
