"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert args.experiment == "table3"
        assert args.scale == 0.35

    def test_overrides(self):
        args = build_parser().parse_args(
            ["table1", "--scale", "0.1", "--seed", "3", "--epoch", "600"]
        )
        assert args.scale == 0.1
        assert args.seed == 3
        assert args.epoch == 600.0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table1", "table3", "table4", "table5", "table6", "table7",
            "table8", "figure1", "figure2", "ablations", "latency",
            "sensitivity", "clustering",
        }
        assert set(EXPERIMENTS) == expected


class TestMain:
    def test_table1_runs(self, capsys):
        code = main(["table1", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "datastar/normal" in out

    def test_csv_only_for_figures(self, capsys, tmp_path):
        code = main(["table1", "--scale", "0.01", "--csv", str(tmp_path / "x.csv")])
        assert code == 2

    def test_figure_csv_output(self, tmp_path, capsys):
        path = tmp_path / "fig2.csv"
        code = main(["figure2", "--scale", "0.08", "--csv", str(path)])
        assert code == 0
        content = path.read_text().splitlines()
        assert content[0] == "procs_bin,time_epoch_s,bound_s"
        assert len(content) > 1
