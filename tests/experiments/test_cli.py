"""Tests for the command-line interface."""

import pytest

from repro import runtime
from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(autouse=True)
def _engine_defaults():
    """main() calls runtime.configure(); don't leak that across tests."""
    runtime.reset_configuration()
    yield
    runtime.reset_configuration()


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert args.experiment == "table3"
        assert args.scale == 0.35

    def test_overrides(self):
        args = build_parser().parse_args(
            ["table1", "--scale", "0.1", "--seed", "3", "--epoch", "600"]
        )
        assert args.scale == 0.1
        assert args.seed == 3
        assert args.epoch == 600.0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_registry_covers_every_table_and_figure(self):
        expected = {
            "table1", "table3", "table4", "table5", "table6", "table7",
            "table8", "figure1", "figure2", "ablations", "latency",
            "sensitivity", "clustering",
        }
        assert set(EXPERIMENTS) == expected

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["table3", "--jobs", "4", "--no-cache", "--bench-json", "b.json"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.bench_json == "b.json"

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["table3"])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.bench_json is None

    def test_clear_cache_is_a_choice(self):
        args = build_parser().parse_args(["clear-cache"])
        assert args.experiment == "clear-cache"


class TestMain:
    def test_table1_runs(self, capsys):
        code = main(["table1", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "datastar/normal" in out

    def test_csv_only_for_figures(self, capsys, tmp_path):
        code = main(["table1", "--scale", "0.01", "--csv", str(tmp_path / "x.csv")])
        assert code == 2

    def test_figure_csv_output(self, tmp_path, capsys):
        path = tmp_path / "fig2.csv"
        code = main(["figure2", "--scale", "0.08", "--csv", str(path)])
        assert code == 0
        content = path.read_text().splitlines()
        assert content[0] == "procs_bin,time_epoch_s,bound_s"
        assert len(content) > 1

    def test_timing_summary_on_stderr_not_stdout(self, capsys):
        code = main(["table1", "--scale", "0.01"])
        assert code == 0
        captured = capsys.readouterr()
        assert "[bmbp] table1:" in captured.err
        assert "cache_hits=" in captured.err
        assert "[bmbp]" not in captured.out  # tables stay clean

    def test_jobs_flag_configures_engine(self):
        main(["table1", "--scale", "0.01", "--jobs", "3"])
        assert runtime.resolve_jobs() == 3

    def test_bench_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_replay.json"
        code = main(["table1", "--scale", "0.01", "--bench-json", str(path)])
        assert code == 0
        import json

        document = json.loads(path.read_text())
        assert document["schema"] == runtime.BENCH_SCHEMA
        assert [run["name"] for run in document["runs"]] == ["table1"]

    def test_clear_cache_command(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("BMBP_CACHE_DIR", str(tmp_path / "cache"))
        cache = runtime.DiskCache(tmp_path / "cache")
        cache.put(runtime.canonical_key("x"), 1)
        code = main(["clear-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 entries removed" in out
        assert str(tmp_path / "cache") in out
        assert not list((tmp_path / "cache").glob("v*/*.pkl"))


class TestFailurePropagation:
    def test_all_reports_failure_and_exits_nonzero(self, capsys, monkeypatch):
        def ok(config):
            return "OK TABLE"

        def boom(config):
            raise RuntimeError("kaboom in worker")

        monkeypatch.setattr(
            "repro.cli.EXPERIMENTS", {"good": ok, "bad": boom}
        )
        code = main(["all", "--scale", "0.01"])
        assert code == 1
        captured = capsys.readouterr()
        # The good experiment still ran and printed its table.
        assert "OK TABLE" in captured.out
        # The failure is reported with its traceback, and named in the recap.
        assert "[bmbp] bad FAILED:" in captured.err
        assert "kaboom in worker" in captured.err
        assert "RuntimeError" in captured.err
        assert "FAILED: bad" in captured.err

    def test_worker_error_traceback_surfaces(self, capsys, monkeypatch):
        def boom(config):
            raise runtime.WorkerError(
                "llnl/short", "Traceback ...\nValueError: inside the worker\n"
            )

        monkeypatch.setattr("repro.cli.EXPERIMENTS", {"bad": boom})
        code = main(["all", "--scale", "0.01"])
        assert code == 1
        err = capsys.readouterr().err
        assert "inside the worker" in err  # remote traceback, verbatim
