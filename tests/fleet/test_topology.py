"""Unit tests for the fleet layout and queue→shard mapping (no processes)."""

import pytest

from repro.fleet import FleetTopology, shard_of


class TestShardOf:
    def test_stable_across_calls(self):
        # The mapping is part of the wire contract: a fixed CRC32, not
        # Python's salted hash().  These exact values must never change.
        assert shard_of("normal", 1) == 0
        for queue in ("normal", "batch", "debug", "wide"):
            assert shard_of(queue, 4) == shard_of(queue, 4)

    def test_covers_all_shards(self):
        n = 4
        owners = {shard_of(f"q{i}", n) for i in range(200)}
        assert owners == set(range(n))

    def test_respects_shard_count(self):
        for n in (1, 2, 3, 8):
            for i in range(50):
                assert 0 <= shard_of(f"q{i}", n) < n


class TestTopology:
    def test_layout_and_manifest_roundtrip(self, tmp_path):
        topo = FleetTopology(tmp_path / "fleet", 3, replicate=True)
        topo.ensure_dirs()
        topo.write_manifest()
        assert (tmp_path / "fleet" / "shard-2" / "follower").is_dir()

        loaded = FleetTopology.load(tmp_path / "fleet")
        assert loaded.shard_count == 3
        assert loaded.replicate is True
        assert loaded.host == topo.host

    def test_load_rejects_foreign_manifest(self, tmp_path):
        (tmp_path / "fleet.json").write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            FleetTopology.load(tmp_path)

    def test_no_follower_dirs_when_unreplicated(self, tmp_path):
        topo = FleetTopology(tmp_path, 2, replicate=False)
        topo.ensure_dirs()
        assert (tmp_path / "shard-1" / "primary").is_dir()
        assert not (tmp_path / "shard-1" / "follower").exists()

    def test_queues_for_yields_owned_names(self, tmp_path):
        topo = FleetTopology(tmp_path, 4)
        for shard_id in range(4):
            names = topo.queues_for(shard_id, count=3)
            assert len(names) == 3
            assert len(set(names)) == 3
            for name in names:
                assert topo.owner(name) == shard_id

    def test_shard_count_validated(self, tmp_path):
        with pytest.raises(ValueError):
            FleetTopology(tmp_path, 0)
