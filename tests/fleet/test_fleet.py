"""Fleet integration smoke tests (default pytest tier).

Real subprocess fleets, kept deliberately small and fast: a 2-shard
replicated fleet per test, ~a dozen jobs per stream.  The exhaustive
failover proofs (bit-identical bounds under SIGKILL, lagging-follower
promotion) live in ``bmbp verify`` fault scenarios; what runs on every
``pytest`` is routing, role enforcement, and the kill-one → promote →
keep-serving path.
"""

import pytest

from repro.fleet import FleetClient
from repro.server.client import ForecastClient, ServerError


def feed(client, queue, lo, hi):
    for i in range(lo, hi):
        now = i * 400.0
        client.submit(f"{queue}-j{i}", queue, 4, now=now)
        client.start(f"{queue}-j{i}", now=now + 100.0 + (i % 7) * 37.0)


def test_routing_roles_and_shard_enforcement(fleet):
    topo = fleet.topology
    q0 = topo.queues_for(0, count=1)[0]
    q1 = topo.queues_for(1, count=1)[0]

    with FleetClient(fleet.endpoints(), host=topo.host) as client:
        feed(client, q0, 0, 70)
        feed(client, q1, 0, 70)
        assert client.forecast(q0, procs=4) is not None
        assert client.forecast(q1, procs=4) is not None
        merged = client.queues()
        assert q0 in merged["queues"] and q1 in merged["queues"]
        assert merged["pending"] == 0

        health = client.healthz()
        assert health[0]["shard_id"] == 0 and health[1]["shard_id"] == 1
        assert all(h["role"] == "primary" for h in health.values())

        # A client with no routing memory finds the owner by fan-out.
        with FleetClient(fleet.endpoints(), host=topo.host) as amnesiac:
            amnesiac.submit("fan-1", q1, 2, now=9000.0)
        with FleetClient(fleet.endpoints(), host=topo.host) as other:
            assert other.cancel("fan-1") is True
            assert other.cancel("fan-1") is False  # already gone everywhere

    # Misrouted queue ops are a contract violation, not silently served.
    with ForecastClient(topo.host, fleet.endpoints()[0]) as direct:
        with pytest.raises(ServerError) as err:
            direct.submit("bad", q1, 1, now=0.0)
        assert err.value.code == "wrong-shard"

    # Followers serve reads but refuse writes.
    follower_port = topo.port_of(0, "follower")
    with ForecastClient(topo.host, follower_port) as follower:
        assert follower.healthz()["role"] == "follower"
        with pytest.raises(ServerError) as err:
            follower.submit("nope", q0, 1, now=0.0)
        assert err.value.code == "not-primary"


def test_kill_one_promote_and_keep_serving(fleet):
    topo = fleet.topology
    q0 = topo.queues_for(0, count=1)[0]
    q1 = topo.queues_for(1, count=1)[0]

    client = FleetClient(
        fleet.endpoints(), host=topo.host, refresh=fleet.endpoints
    )
    try:
        feed(client, q0, 0, 70)
        feed(client, q1, 0, 70)
        bound_before = client.forecast(q0, procs=4)
        assert bound_before is not None

        assert fleet.kill(0, "primary") == -9  # SIGKILL: no drain
        promoted = fleet.promote(0)
        assert promoted["promoted"] is True

        # Same client object: the transport error triggers its refresh
        # hook, which lands on the promoted port — and the promoted
        # replica quotes the exact pre-kill bound (loss-free failover).
        assert client.forecast(q0, procs=4) == bound_before
        assert client.healthz()[0]["role"] == "primary"

        # The fleet still takes writes on both shards.
        client.submit("after-0", q0, 4, now=90000.0)
        client.submit("after-1", q1, 4, now=90000.0)
        assert client.queues()["pending"] == 2

        # The untouched shard never noticed.
        assert client.forecast(q1, procs=4) is not None
    finally:
        client.close()
