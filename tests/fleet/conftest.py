"""Fixtures for the fleet test suite.

The integration fixtures spawn real ``repro serve`` subprocesses (one per
shard member), so the session fixture mirrors ``tests/server``: make sure
the children can import ``repro`` however pytest itself was launched.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro


@pytest.fixture(scope="session", autouse=True)
def _subprocess_can_import_repro():
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )


#: Fast-training daemon flags shared by every fleet integration test
#: (epoch 0 refits on every submission: quotes are a pure function of
#: history, which is what makes bit-identity assertions possible).
FAST_ARGS = ["--training-jobs", "5", "--epoch", "0"]


@pytest.fixture
def fleet(tmp_path):
    """A running 2-shard replicated fleet; yields its FleetManager."""
    from repro.fleet import FleetManager

    with FleetManager(
        tmp_path / "fleet",
        shard_count=2,
        replicate=True,
        extra_args=FAST_ARGS,
        checkpoint_interval=3600.0,
    ) as manager:
        manager.start()
        yield manager
