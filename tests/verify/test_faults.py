"""Unit tests for the fault-injection machinery and in-process scenarios.

The daemon-backed crash scenarios run (once) inside the fast verify tier
via ``test_verify_cli.py``; duplicating those subprocess drives here would
double the suite's wall time for no extra coverage.  This file pins the
plan parser, the hit-counting semantics, the env-var loading path, and the
two scenarios cheap enough to run in-process.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.verify import faults


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection inactive."""
    faults.reset()
    yield
    faults.reset()


class TestParsePlan:
    def test_single_rule(self):
        plan = faults.parse_plan("journal.write:torn@41")
        assert plan.rules == [
            faults.FaultRule(site="journal.write", action="torn", at=41)
        ]

    def test_multiple_rules_and_whitespace(self):
        plan = faults.parse_plan(" a:x@1 , b:y@2 ,")
        assert [r.site for r in plan.rules] == ["a", "b"]
        assert plan.spec() == "a:x@1,b:y@2"

    def test_empty_spec_is_empty_plan(self):
        assert faults.parse_plan("").rules == []

    @pytest.mark.parametrize(
        "spec",
        [
            "nonsense",
            "site:action",  # missing @N
            "site@3",  # missing action
            "site:action@zero",
            "site:action@0",  # 1-based
            "site:action@-1",
            ":action@1",
            "site:@1",
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_plan(spec)


class TestFaultPlan:
    def test_fires_on_exact_hit_only(self):
        plan = faults.parse_plan("s:boom@3")
        assert [plan.fire("s") for _ in range(5)] == [
            None, None, "boom", None, None,
        ]
        assert plan.hits("s") == 5

    def test_sites_count_independently(self):
        plan = faults.parse_plan("a:x@1,b:y@2")
        assert plan.fire("b") is None
        assert plan.fire("a") == "x"
        assert plan.fire("b") == "y"
        assert plan.hits("a") == 1 and plan.hits("b") == 2

    def test_unknown_site_still_counts(self):
        plan = faults.FaultPlan([])
        assert plan.fire("anything") is None
        assert plan.hits("anything") == 1


class TestModuleState:
    def test_fire_is_noop_without_plan(self):
        assert not faults.active()
        # No plan: no counting, no action, for any number of calls.
        assert faults.fire("journal.write") is None
        assert faults.fire("journal.write") is None

    def test_install_and_reset(self):
        plan = faults.install("s:go@1")
        assert faults.active()
        assert faults.fire("s") == "go"
        assert plan.hits("s") == 1
        faults.reset()
        assert not faults.active()
        assert faults.fire("s") is None

    def test_install_accepts_a_plan_object(self):
        plan = faults.parse_plan("s:go@2")
        assert faults.install(plan) is plan
        assert faults.fire("s") is None
        assert faults.fire("s") == "go"

    def test_not_in_worker_process_here(self):
        # The test process is a top-level process; the die-action guard
        # must therefore refuse to fire in it.
        assert not faults.in_worker_process()

    def test_env_var_loads_plan_in_subprocess(self):
        """A process born with BMBP_FAULTS set is faulty from import."""
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env[faults.ENV_VAR] = "probe:hit@1"
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.verify import faults;"
            "print(faults.active(), faults.fire('probe'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.split() == ["True", "hit"]

    def test_empty_env_var_means_clean_subprocess(self):
        env = dict(os.environ)
        env[faults.ENV_VAR] = ""
        src = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = "from repro.verify import faults; print(faults.active())"
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env, capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "False"

    def test_daemon_env_always_pins_the_variable(self):
        assert faults._daemon_env(None)[faults.ENV_VAR] == ""
        assert faults._daemon_env("a:b@1")[faults.ENV_VAR] == "a:b@1"


class TestInProcessScenarios:
    def test_worker_death_recovers_to_identical_results(self, tmp_path):
        details = faults.scenario_worker_death(tmp_path)
        assert details["results_identical"]

    def test_cache_corruption_recomputes(self, tmp_path):
        details = faults.scenario_cache_corruption(tmp_path)
        assert details["recomputed_after_corruption"]
        assert details["rehit_after_recompute"]

    def test_registry_covers_at_least_five_scenarios(self):
        # ISSUE acceptance: >= 5 injected-fault recovery scenarios.
        assert len(faults.SCENARIOS) >= 5

    def test_run_fault_scenarios_subset_reports_records(self):
        records = faults.run_fault_scenarios(["worker-death", "cache-corruption"])
        assert [r["name"] for r in records] == ["worker-death", "cache-corruption"]
        for record in records:
            assert record["passed"], record.get("error")
            assert record["seconds"] >= 0.0
