"""The ``bmbp verify`` fast tier, run inside the default pytest suite.

This is the ISSUE's integration requirement: plain ``pytest`` exercises
the same conformance + golden + fault checks CI's ``bmbp verify --fast``
does.  The tier is executed once (module-scoped) and every assertion
reads the shared report — the ~20 s cost is paid a single time.
"""

import json

import pytest

from repro.verify import conformance, faults
from repro.verify.runner import VERIFY_SCHEMA, build_verify_parser, run_verify


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("verify") / "VERIFY.json"
    report = run_verify(tier="fast", json_path=str(path))
    report["_json_path"] = path
    return report


class TestFastTier:
    def test_everything_passed(self, report):
        failed = [c for c in report["checks"] if not c["passed"]]
        assert report["passed"], [
            (c["name"], c.get("error") or c.get("details")) for c in failed
        ]

    def test_all_three_generator_families_asserted(self, report):
        names = {c["name"] for c in report["checks"]}
        assert {
            "conformance/bmbp-iid-coverage",
            "conformance/bmbp-ar1-coverage",
            "conformance/bmbp-regime-replay-coverage",
        } <= names

    def test_all_conformance_checks_ran(self, report):
        ran = [
            c["name"].split("/", 1)[1]
            for c in report["checks"]
            if c["name"].startswith("conformance/")
        ]
        assert ran == list(conformance.CONFORMANCE_CHECKS)

    def test_golden_regression_ran(self, report):
        names = {c["name"] for c in report["checks"]}
        assert "golden/regression" in names

    def test_at_least_five_fault_scenarios_passed(self, report):
        fault_checks = [
            c for c in report["checks"] if c["name"].startswith("faults/")
        ]
        assert len(fault_checks) >= 5
        assert all(c["passed"] for c in fault_checks), [
            (c["name"], c.get("error")) for c in fault_checks if not c["passed"]
        ]
        # The full registry ran, not a subset.
        assert {c["name"].split("/", 1)[1] for c in fault_checks} == set(
            faults.SCENARIOS
        )

    def test_crash_scenarios_prove_the_injected_crash(self, report):
        by_name = {c["name"]: c for c in report["checks"]}
        for name in (
            "faults/torn-journal",
            "faults/durable-unacked-crash",
            "faults/checkpoint-crash-before-replace",
            "faults/checkpoint-crash-after-replace",
        ):
            assert by_name[name]["details"]["crash_exit"] == faults.CRASH_EXIT_CODE

    def test_coverage_details_carry_wilson_intervals(self, report):
        by_name = {c["name"]: c for c in report["checks"]}
        details = by_name["conformance/bmbp-iid-coverage"]["details"]
        lo, hi = details["wilson_95"]
        assert 0.0 <= lo <= details["coverage"] <= hi <= 1.0
        assert hi >= details["target"] == conformance.CONFIDENCE

    def test_json_artifact_matches_schema(self, report):
        on_disk = json.loads(report["_json_path"].read_text())
        assert on_disk["schema"] == VERIFY_SCHEMA
        assert on_disk["tier"] == "fast"
        assert on_disk["passed"] is True
        assert on_disk["seed"] == conformance.TIERS["fast"].seed
        for check in on_disk["checks"]:
            assert set(check) == {"name", "passed", "seconds", "details", "error"}

    def test_fast_tier_fits_the_ci_budget(self, report):
        # The tier has grown with the check registry (21 checks: three
        # subsystem fault-scenario suites plus conformance) and now
        # measures ~85 s standalone, ~100 s under a loaded full-suite
        # run.  The budget exists to catch a real blow-up — e.g. a hung
        # daemon eating a 15 s timeout per scenario would add minutes —
        # not to race the hardware, so it tracks the registry with
        # headroom.
        assert report["seconds"] < 150.0


class TestParser:
    def test_defaults(self):
        args = build_verify_parser().parse_args([])
        assert args.tier == "fast"
        assert args.json == "VERIFY.json"
        assert args.seed is None
        assert not args.update_golden

    def test_full_tier_flag(self):
        assert build_verify_parser().parse_args(["--full"]).tier == "full"

    def test_tiers_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_verify_parser().parse_args(["--fast", "--full"])

    def test_seed_override_reaches_the_report(self, tmp_path):
        # Narrow run: just the cheap in-process scenarios, no conformance
        # re-run needed to check the seed plumbing.
        report = run_verify(
            tier="fast",
            seed=12345,
            json_path=str(tmp_path / "v.json"),
            fault_scenarios=["worker-death"],
        )
        assert report["seed"] == 12345
