"""Unit tests for the Monte Carlo conformance engine.

The full fast tier runs in ``test_verify_cli.py``; these tests pin the
engine's building blocks — the Wilson interval arithmetic, the synthetic
generators' analytic properties, and the determinism of the coverage
loops — at miniature Monte Carlo sizes.
"""

import math
from statistics import NormalDist

import numpy as np
import pytest

from repro.core.bmbp import BMBPPredictor
from repro.verify import conformance as conf


#: Miniature tier: seconds, not minutes, for unit-level checks.
MINI = conf.TierParams(trials=60, sample_size=80, replays=1, replay_jobs=600)


class TestWilsonInterval:
    def test_brackets_the_point_estimate(self):
        lo, hi = conf.wilson_interval(95, 100)
        assert lo < 0.95 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_known_value(self):
        # Wilson 95% for 8/10, computed independently from the formula.
        lo, hi = conf.wilson_interval(8, 10)
        assert lo == pytest.approx(0.4902, abs=1e-3)
        assert hi == pytest.approx(0.9433, abs=1e-3)

    def test_extremes_stay_inside_unit_interval(self):
        lo0, hi0 = conf.wilson_interval(0, 50)
        loN, hiN = conf.wilson_interval(50, 50)
        assert lo0 == 0.0 and hi0 < 0.15
        assert loN > 0.85 and hiN == 1.0

    def test_tightens_with_more_trials(self):
        _, hi_small = conf.wilson_interval(57, 60)
        _, hi_large = conf.wilson_interval(570, 600)
        assert hi_large < hi_small

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            conf.wilson_interval(1, 0)
        with pytest.raises(ValueError):
            conf.wilson_interval(5, 4)


class TestGenerators:
    def test_iid_matches_analytic_quantile(self):
        rng = np.random.default_rng(7)
        waits = conf.iid_lognormal_waits(rng, 200_000)
        true_q = conf.true_lognormal_quantile(0.95)
        empirical = float(np.quantile(waits, 0.95))
        assert empirical == pytest.approx(true_q, rel=0.02)

    def test_shifted_family_matches_its_quantile(self):
        rng = np.random.default_rng(8)
        waits = conf.iid_lognormal_waits(rng, 200_000, shift=1.0)
        assert np.all(waits >= 0.0)
        true_q = conf.true_lognormal_quantile(0.95, shift=1.0)
        assert float(np.quantile(waits, 0.95)) == pytest.approx(true_q, rel=0.02)

    def test_ar1_is_marginally_stationary(self):
        """Unit marginal variance: logs are N(mu, sigma) at every lag."""
        rng = np.random.default_rng(9)
        logs = np.log(conf.ar1_log_waits(rng, 200_000, rho=0.5))
        assert float(logs.mean()) == pytest.approx(conf.MU, abs=0.02)
        assert float(logs.std()) == pytest.approx(conf.SIGMA, rel=0.02)
        # And actually correlated: lag-1 autocorrelation near rho.
        centered = logs - logs.mean()
        rho_hat = float(
            (centered[:-1] * centered[1:]).mean() / centered.var()
        )
        assert rho_hat == pytest.approx(0.5, abs=0.03)

    def test_regime_shift_trace_structure(self):
        rng = np.random.default_rng(10)
        trace = conf.regime_shift_trace(rng, 400, jump=1.0)
        assert len(trace) == 400
        waits = np.array([job.wait for job in trace])
        # The post-shift half sits e^1 higher in the median.
        ratio = np.median(waits[200:]) / np.median(waits[:200])
        assert ratio == pytest.approx(math.e, rel=0.35)


class TestStaticCoverage:
    def test_deterministic_given_seed(self):
        run = lambda: conf.static_coverage(
            lambda: BMBPPredictor(0.95, 0.95),
            lambda rng: conf.iid_lognormal_waits(rng, 80),
            conf.true_lognormal_quantile(0.95),
            trials=40,
            seed=123,
        )
        assert run() == run()

    def test_bmbp_overcovers_at_miniature_sizes(self):
        covered, trials = conf.static_coverage(
            lambda: BMBPPredictor(0.95, 0.95),
            lambda rng: conf.iid_lognormal_waits(rng, 80),
            conf.true_lognormal_quantile(0.95),
            trials=60,
            seed=456,
        )
        _, hi = conf.wilson_interval(covered, trials)
        assert hi >= 0.95


class TestChecks:
    def test_negative_control_flags_point_quantile(self):
        passed, details = conf.check_detects_undercoverage(MINI)
        assert passed, details
        # The harness saw under-coverage confidently below C:
        assert details["wilson_95"][1] < 0.95

    def test_regime_replay_records_change_points(self):
        passed, details = conf.check_bmbp_regime_replay(MINI)
        assert "change_points" in details
        assert details["trials"] > 0

    def test_closed_loop_feedback_closes_the_loop(self):
        # Coverage at miniature sizes is noisy (a 1800-job scheduler trace
        # can be one long burst), so pin the mechanism, not the verdict:
        # the trace must come out of a live predictive run.
        _, details = conf.check_closed_loop_feedback(MINI)
        assert details["family"] == "closed-loop-feedback"
        assert details.get("feed_events", 0) > 0
        assert details["trials"] > 0
        assert len(details["per_replay_fraction"]) == MINI.replays

    def test_registry_names_are_stable(self):
        # VERIFY.json consumers key on these names.
        assert list(conf.CONFORMANCE_CHECKS) == [
            "bmbp-iid-coverage",
            "bmbp-ar1-coverage",
            "bmbp-regime-replay-coverage",
            "lognormal-iid-coverage",
            "harness-detects-undercoverage",
            "baseline-sweep",
            "sketch-quantile-accuracy",
            "closed-loop-feedback",
            "real-trace-corpus",
        ]

    def test_wilson_z_matches_normal_quantile(self):
        # Guards the inv_cdf plumbing the interval relies on.
        z = NormalDist().inv_cdf(0.975)
        assert z == pytest.approx(1.959964, abs=1e-5)
