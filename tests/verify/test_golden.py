"""Golden-trace regression: the committed fixtures, and the differ itself.

Two things must hold: the pinned goldens match the current code (a numeric
regression anywhere in the predictor/replay stack fails here with a
first-divergence message), and the comparison logic actually catches the
perturbations it exists for.
"""

import copy
import json
import shutil

import pytest

from repro.verify import golden


@pytest.fixture(scope="module")
def ar1_recomputed():
    """One recompute of the ar1 fixture, shared across differ tests."""
    return golden.compute_golden(golden.golden_dir() / "trace-ar1.swf")


def _pinned(name):
    return json.loads((golden.golden_dir() / name).read_text())


class TestCommittedFixtures:
    def test_fixture_files_exist(self):
        names = {p.name for p in golden.golden_dir().iterdir()}
        assert {"trace-ar1.swf", "trace-regime.swf",
                "golden-ar1.json", "golden-regime.json",
                "sched-jobs.json", "golden-sched.json",
                "corpus-site.swf.gz", "golden-corpus.json"} <= names

    def test_goldens_match_current_code(self):
        passed, details = golden.verify_goldens()
        assert passed, details.get("divergences")
        assert sorted(details["fixtures"]) == [
            "golden-ar1.json", "golden-corpus.json",
            "golden-regime.json", "golden-sched.json",
        ]

    def test_regime_fixture_pins_a_change_point(self):
        # The regime trace exists to pin detector behaviour, not just bounds.
        pinned = _pinned("golden-regime.json")
        assert pinned["methods"]["bmbp"]["change_points"] >= 1

    def test_golden_schema_and_replay_params_are_pinned(self):
        for name in ("golden-ar1.json", "golden-regime.json"):
            pinned = _pinned(name)
            assert pinned["schema"] == golden.GOLDEN_SCHEMA
            assert pinned["replay"] == {"epoch": 300.0, "training_fraction": 0.10}
            assert len(pinned["trace_sha256"]) == 64


class TestDiffer:
    def test_identical_records_have_no_divergence(self, ar1_recomputed):
        assert golden.compare_golden(ar1_recomputed, ar1_recomputed) == []

    def test_value_drift_is_caught_with_location(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["methods"]["bmbp"]["series_values"][3] *= 1.0 + 1e-6
        problems = golden.compare_golden(pinned, ar1_recomputed)
        assert len(problems) == 1
        assert "bmbp.series_values[3]" in problems[0]
        assert "rtol" in problems[0]

    def test_last_ulp_noise_is_forgiven(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["methods"]["bmbp"]["series_values"][3] *= 1.0 + 1e-12
        assert golden.compare_golden(pinned, ar1_recomputed) == []

    def test_counter_drift_is_caught_exactly(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["methods"]["downey"]["n_correct"] += 1
        problems = golden.compare_golden(pinned, ar1_recomputed)
        assert problems == [
            "downey.n_correct: expected "
            f"{pinned['methods']['downey']['n_correct']}, "
            f"got {ar1_recomputed['methods']['downey']['n_correct']}"
        ]

    def test_series_truncation_is_caught(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["methods"]["bmbp"]["series_times"].pop()
        pinned["methods"]["bmbp"]["series_values"].pop()
        problems = golden.compare_golden(pinned, ar1_recomputed)
        assert len(problems) == 1 and "series length" in problems[0]

    def test_trace_tamper_is_caught_by_sha(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["trace_sha256"] = "0" * 64
        problems = golden.compare_golden(pinned, ar1_recomputed)
        assert any("trace fixture changed" in p for p in problems)

    def test_dropped_method_is_caught(self, ar1_recomputed):
        recomputed = copy.deepcopy(ar1_recomputed)
        del recomputed["methods"]["downey"]
        problems = golden.compare_golden(ar1_recomputed, recomputed)
        assert problems == ["method 'downey' no longer computed"]

    def test_unknown_schema_is_rejected_outright(self, ar1_recomputed):
        pinned = copy.deepcopy(ar1_recomputed)
        pinned["schema"] = "bmbp-golden-v999"
        problems = golden.compare_golden(pinned, ar1_recomputed)
        assert problems == ["unknown golden schema 'bmbp-golden-v999'"]


class TestSchedGolden:
    @pytest.fixture(scope="class")
    def sched_recomputed(self):
        return golden.compute_sched_golden(golden.golden_dir() / "sched-jobs.json")

    def test_pinned_record_matches_current_code(self, sched_recomputed):
        problems = golden.compare_sched_golden(
            _pinned("golden-sched.json"), sched_recomputed
        )
        assert problems == []

    def test_fixture_pins_the_deepest_predictive_path(self):
        # The run must actually exercise admission holds, or the golden
        # would silently stop covering the hold/release arithmetic.
        pinned = _pinned("golden-sched.json")
        assert pinned["schema"] == golden.GOLDEN_SCHED_SCHEMA
        assert pinned["policy"] == "predictive-hold"
        assert pinned["holds"] > 0
        assert len(pinned["start_times"]) == pinned["jobs"]

    def test_start_time_drift_is_caught_with_location(self, sched_recomputed):
        pinned = copy.deepcopy(sched_recomputed)
        pinned["start_times"][7] += 1e-3
        problems = golden.compare_sched_golden(pinned, sched_recomputed)
        assert len(problems) == 1
        assert "start_times[job 7]" in problems[0]

    def test_last_ulp_noise_is_forgiven(self, sched_recomputed):
        pinned = copy.deepcopy(sched_recomputed)
        pinned["start_times"][7] *= 1.0 + 1e-12
        assert golden.compare_sched_golden(pinned, sched_recomputed) == []

    def test_hold_count_drift_is_caught(self, sched_recomputed):
        pinned = copy.deepcopy(sched_recomputed)
        pinned["holds"] += 1
        problems = golden.compare_sched_golden(pinned, sched_recomputed)
        assert len(problems) == 1 and "sched.holds" in problems[0]

    def test_fixture_tamper_is_caught_by_sha(self, sched_recomputed):
        pinned = copy.deepcopy(sched_recomputed)
        pinned["trace_sha256"] = "0" * 64
        problems = golden.compare_sched_golden(pinned, sched_recomputed)
        assert any("fixture changed" in p for p in problems)


class TestRegeneration:
    def test_regenerate_round_trips(self, tmp_path):
        """--update-golden on an unchanged tree reproduces the pinned files."""
        for name in ("trace-ar1.swf", "trace-regime.swf", "sched-jobs.json",
                     "corpus-site.swf.gz"):
            shutil.copy(golden.golden_dir() / name, tmp_path / name)
        written = golden.regenerate_goldens(tmp_path)
        assert sorted(written) == [
            "golden-ar1.json", "golden-corpus.json",
            "golden-regime.json", "golden-sched.json",
        ]
        for name in written:
            assert json.loads((tmp_path / name).read_text()) == _pinned(name)

    def test_verify_fails_cleanly_on_missing_directory(self, tmp_path):
        passed, details = golden.verify_goldens(tmp_path / "nope")
        assert not passed and "does not exist" in details["error"]

    def test_verify_fails_cleanly_on_empty_directory(self, tmp_path):
        passed, details = golden.verify_goldens(tmp_path)
        assert not passed and "no golden-*.json" in details["error"]
