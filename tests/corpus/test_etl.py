"""Tests for the streaming ETL adapters and cleaning pass."""

import gzip

import pytest

from repro.corpus.etl import detect_format, ingest
from repro.corpus.fixtures import expected_drops, generate_corpus_fixture
from repro.corpus.store import CorpusError, CorpusStore
from repro.verify import faults


@pytest.fixture()
def fixture_log(tmp_path):
    path = tmp_path / "fix.swf.gz"
    summary = generate_corpus_fixture(path, jobs=4000, seed=11)
    return path, summary


class TestDetectFormat:
    def test_swf_variants(self, tmp_path):
        assert detect_format("x.swf") == "swf"
        assert detect_format("x.swf.gz") == "swf"
        assert detect_format("jobs.csv") == "alibaba"
        assert detect_format("jobs.csv.gz") == "alibaba"
        with pytest.raises(CorpusError):
            detect_format("x.parquet")


class TestSwfIngest:
    def test_drop_ledger_matches_injected_anomalies(self, tmp_path, fixture_log):
        path, summary = fixture_log
        store, stats = ingest(path, tmp_path / "site")
        assert stats.kept == summary.jobs
        assert dict(stats.drops) == expected_drops(summary)
        assert store.rows == summary.jobs
        # The ledger is persisted in the manifest, never silent.
        assert store.manifest["etl"]["drops"] == expected_drops(summary)

    def test_header_queue_names_applied(self, tmp_path, fixture_log):
        path, _ = fixture_log
        store, _ = ingest(path, tmp_path / "site")
        assert set(store.queues()) == {"express", "normal", "low", "wide"}

    def test_source_checksum_recorded(self, tmp_path, fixture_log):
        path, _ = fixture_log
        from repro.workloads.archive import file_sha256

        store, stats = ingest(path, tmp_path / "site")
        assert stats.source_sha256 == file_sha256(path)
        assert store.manifest["source"]["sha256"] == stats.source_sha256
        assert store.manifest["source"]["bytes"] == path.stat().st_size

    def test_existing_dest_requires_force(self, tmp_path, fixture_log):
        path, _ = fixture_log
        dest = tmp_path / "site"
        ingest(path, dest)
        with pytest.raises(CorpusError):
            ingest(path, dest)
        store, _ = ingest(path, dest, force=True)
        assert store.rows > 0

    def test_out_of_order_submits_resorted(self, tmp_path):
        # Mildly out-of-order records (within the skew tolerance) are kept
        # and the finalize pass sorts the store.
        lines = [
            "1 100 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1",
            "2 300 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1",
            "3 200 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1",
        ]
        path = tmp_path / "log.swf"
        path.write_text("\n".join(lines) + "\n")
        store, stats = ingest(path, tmp_path / "site")
        assert stats.kept == 3
        assert store.manifest["etl"]["resorted"] is True
        submits = store.column("submit")
        assert list(submits) == [100.0, 200.0, 300.0]

    def test_clock_skew_dropped_beyond_tolerance(self, tmp_path):
        lines = [
            "1 100000 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1",
            "2 100 10 60 4 -1 -1 4 -1 -1 1 1 1 -1 1 1 -1 -1",  # 99900 s back
        ]
        path = tmp_path / "log.swf"
        path.write_text("\n".join(lines) + "\n")
        store, stats = ingest(path, tmp_path / "site")
        assert stats.kept == 1
        assert stats.drops["clock_skew"] == 1


class TestAlibabaIngest:
    CSV = (
        "job_name,inst_num,status,submit_time,start_time,end_time,plan_gpu,gpu_type\n"
        "j1,1,Terminated,100,160,400,100,V100\n"
        "j2,2,Terminated,200,230,500,50,T4\n"
        "j3,1,Failed,300,310,320,100,V100\n"
        "j4,1,Terminated,400,,,100,V100\n"
        "j5,1,Terminated,500,480,600,100,V100\n"
    )

    def test_schema_and_cleaning(self, tmp_path):
        path = tmp_path / "jobs.csv"
        path.write_text(self.CSV)
        store, stats = ingest(path, tmp_path / "site")
        # j1 and j2 kept; j3 wrong status, j4 unstarted, j5 negative wait.
        assert stats.kept == 2
        assert stats.drops["status"] == 1
        assert stats.drops["incomplete"] == 1
        assert stats.drops["negative_wait"] == 1
        view = store.view()
        assert set(store.queues()) == {"V100", "T4"}
        assert list(view.waits) == [60.0, 30.0]
        # j2: inst_num 2 x ceil(50/100)=1 -> procs 2.
        assert list(view.procs) == [1, 2]

    def test_gzip_csv(self, tmp_path):
        path = tmp_path / "jobs.csv.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(self.CSV)
        _, stats = ingest(path, tmp_path / "site")
        assert stats.kept == 2


class TestFaultHook:
    def test_raise_action_leaves_no_store(self, tmp_path, fixture_log):
        path, _ = fixture_log
        dest = tmp_path / "site"
        faults.install("corpus.ingest:raise@1")
        try:
            with pytest.raises(RuntimeError, match="injected"):
                ingest(path, dest, chunk_rows=500)
        finally:
            faults.reset()
        assert not dest.exists()
        # No stale temp directories left behind either.
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".site")]
        assert leftovers == []

    def test_finalize_raise_leaves_no_store(self, tmp_path, fixture_log):
        path, _ = fixture_log
        dest = tmp_path / "site"
        faults.install("corpus.finalize:raise@1")
        try:
            with pytest.raises(RuntimeError, match="injected"):
                ingest(path, dest)
        finally:
            faults.reset()
        assert not dest.exists()

    def test_recovery_after_fault(self, tmp_path, fixture_log):
        path, summary = fixture_log
        dest = tmp_path / "site"
        faults.install("corpus.ingest:raise@1")
        try:
            with pytest.raises(RuntimeError):
                ingest(path, dest, chunk_rows=500)
        finally:
            faults.reset()
        store, stats = ingest(path, dest)
        assert store.rows == summary.jobs
        assert CorpusStore(dest).verify()["ok"]
