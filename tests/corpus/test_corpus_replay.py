"""Tests for the corpus replay harness and bench driver."""

import pytest

from repro.corpus.etl import ingest
from repro.corpus.fixtures import generate_corpus_fixture
from repro.corpus.replay import replay_store, run_corpus_bench


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("corpus-replay")
    log = tmp / "fix.swf.gz"
    generate_corpus_fixture(log, jobs=8000, seed=13)
    built, _ = ingest(log, tmp / "site", site="replay-site")
    return built


class TestReplayStore:
    def test_report_shape_and_coverage(self, store):
        report = replay_store(
            store, methods=["bmbp"], min_queue_jobs=300
        )
        assert report["site"] == "replay-site"
        assert report["rows"] == 8000
        assert report["methods"] == ["bmbp"]
        replayed = [
            q for q, row in report["queues"].items() if not row.get("skipped")
        ]
        assert replayed, "no queue was large enough to replay"
        assert report["jobs_replayed"] == sum(
            report["queues"][q]["jobs"] for q in replayed
        )
        for q in replayed:
            cov = report["queues"][q]["coverage"]
            assert cov["quantile"] == 0.95
            assert cov["confidence"] == 0.95
            assert cov["evaluated"] > 0
            assert 0.0 <= cov["wilson_low"] <= cov["fraction"]
            assert cov["fraction"] <= cov["wilson_high"] <= 1.0
        # The fixture's well-behaved waits should satisfy the paper claim.
        assert report["coverage_pass"]
        assert report["jobs_per_s"] > 0

    def test_small_queues_skipped(self, store):
        report = replay_store(store, methods=["bmbp"], min_queue_jobs=10**9)
        assert report["jobs_replayed"] == 0
        assert all(row["skipped"] for row in report["queues"].values())
        # Vacuous pass: nothing replayed means nothing failed.
        assert report["coverage_pass"]

    def test_method_subset_respected(self, store):
        report = replay_store(
            store, methods=["bmbp", "logn-trim"], min_queue_jobs=300
        )
        for q, row in report["queues"].items():
            if not row.get("skipped"):
                assert set(row["methods"]) == {"bmbp", "logn-trim"}

    def test_view_accepted_directly(self, store):
        report = replay_store(
            store.view(), methods=["bmbp"], min_queue_jobs=300
        )
        assert report["rows"] == 8000


class TestBench:
    def test_smoke_bench_writes_artifact(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.corpus.replay._BENCH_SITES_SMOKE",
            (("syn-tiny", 6000, 20260808),),
        )
        artifact = tmp_path / "BENCH_corpus.json"
        report = run_corpus_bench(
            smoke=True, workdir=tmp_path / "work", artifact=artifact
        )
        assert artifact.exists()
        assert report["schema"] == "bmbp-bench-corpus/2"
        assert report["smoke"] is True
        assert len(report["sites"]) == 1
        site = report["sites"][0]
        assert site["ingest"]["kept"] == 6000
        assert site["store"]["rows"] == 6000
        assert report["summary"]["coverage_pass"]
        assert report["summary"]["ingest_rows_per_s"] > 0
        # Scaling section: serial + parallel arms, cached re-run, identity.
        scaling = report["scaling"]
        arm_jobs = [row["jobs"] for row in scaling["rows"]]
        assert arm_jobs[0] == 1 and len(arm_jobs) > 1
        assert scaling["parallel_identical_to_serial"]
        cached = scaling["cached"]
        assert cached["misses"] == 0 and cached["hits"] > 0
        assert report["cpu_count"] >= 1
        site_scaling = site["scaling"]
        assert all(arm["identical_to_serial"] for arm in site_scaling["arms"])
        assert site_scaling["stragglers"], "straggler breakdown missing"
        top = site_scaling["stragglers"][0]
        assert {"unit", "queue", "rows", "seconds", "share"} <= set(top)
