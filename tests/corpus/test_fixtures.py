"""Tests for the deterministic archive-shaped fixture generator."""

import gzip

from repro.corpus.fixtures import (
    FIXTURE_QUEUES,
    expected_drops,
    fixture_queue_names,
    generate_corpus_fixture,
)


class TestDeterminism:
    def test_same_seed_byte_identical(self, tmp_path):
        a = tmp_path / "a.swf.gz"
        b = tmp_path / "b.swf.gz"
        sa = generate_corpus_fixture(a, jobs=3000, seed=7)
        sb = generate_corpus_fixture(b, jobs=3000, seed=7)
        assert a.read_bytes() == b.read_bytes()
        assert sa.anomalies == sb.anomalies

    def test_different_seed_differs(self, tmp_path):
        a = tmp_path / "a.swf.gz"
        b = tmp_path / "b.swf.gz"
        generate_corpus_fixture(a, jobs=3000, seed=7)
        generate_corpus_fixture(b, jobs=3000, seed=8)
        assert a.read_bytes() != b.read_bytes()


class TestShape:
    def test_summary_accounting(self, tmp_path):
        summary = generate_corpus_fixture(
            tmp_path / "f.swf.gz", jobs=5000, seed=3
        )
        assert summary.jobs == 5000
        assert sum(summary.queues.values()) == 5000
        assert summary.records == 5000 + sum(summary.anomalies.values())
        for kind in ("negative_wait", "zero_procs", "clock_skew"):
            assert summary.anomalies[kind] > 0
        assert summary.partial_records > 0
        assert expected_drops(summary) == summary.anomalies

    def test_header_declares_queues(self, tmp_path):
        path = tmp_path / "f.swf.gz"
        generate_corpus_fixture(path, jobs=2000, seed=3)
        with gzip.open(path, "rt") as fh:
            header = [line for line in fh if line.startswith(";")]
        text = "".join(header)
        for queue in FIXTURE_QUEUES:
            assert f"; Queue: {queue.number} {queue.name}" in text
        assert "MaxProcs" in text

    def test_record_count_on_disk(self, tmp_path):
        path = tmp_path / "f.swf.gz"
        summary = generate_corpus_fixture(path, jobs=2000, seed=5)
        with gzip.open(path, "rt") as fh:
            data_lines = [
                line for line in fh if line.strip() and not line.startswith(";")
            ]
        assert len(data_lines) == summary.records

    def test_no_anomalies_mode(self, tmp_path):
        summary = generate_corpus_fixture(
            tmp_path / "f.swf.gz", jobs=2000, seed=5, anomalies=False
        )
        assert summary.records == summary.jobs
        assert sum(summary.anomalies.values()) == 0

    def test_queue_names_helper(self):
        names = fixture_queue_names()
        assert names[1] == "express"
        assert len(names) == len(FIXTURE_QUEUES)
