"""Tests for the columnar memmap store: round-trips, slicing, corruption."""

import json

import numpy as np
import pytest

from repro.corpus.etl import ingest
from repro.corpus.fixtures import generate_corpus_fixture
from repro.corpus.store import (
    COLUMNS,
    ColumnWriter,
    CorpusError,
    CorpusStore,
)


@pytest.fixture(scope="module")
def site(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("corpus-store")
    log = tmp / "fix.swf.gz"
    summary = generate_corpus_fixture(log, jobs=4000, seed=21)
    store, _ = ingest(log, tmp / "site")
    return store, summary


class TestManifestRoundTrip:
    def test_reload_preserves_manifest(self, site):
        store, summary = site
        again = CorpusStore(store.path)
        assert again.manifest == store.manifest
        assert again.rows == summary.jobs
        assert again.site == store.site
        assert again.queue_names == store.queue_names

    def test_dtype_stability_across_reload(self, site):
        store, _ = site
        again = CorpusStore(store.path)
        for name, dtype, _ in COLUMNS:
            assert again.column(name).dtype == np.dtype(dtype)
            assert store.column(name).dtype == np.dtype(dtype)
            np.testing.assert_array_equal(
                np.asarray(again.column(name)), np.asarray(store.column(name))
            )

    def test_checksums_verify(self, site):
        store, _ = site
        assert store.verify()["ok"]


class TestZeroCopy:
    def test_view_is_memmap_backed(self, site):
        store, _ = site
        view = store.view()
        assert view.is_memmap_backed()
        assert isinstance(view.submit_times, np.memmap)
        assert isinstance(view.waits, np.memmap)

    def test_time_slice_stays_memmap_backed(self, site):
        store, _ = site
        view = store.view()
        t0, t1 = store.time_range()
        mid = view.time_slice(t0 + (t1 - t0) / 4, t0 + (t1 - t0) / 2)
        assert 0 < len(mid) < len(view)
        assert mid.is_memmap_backed()

    def test_by_queue_materializes(self, site):
        store, _ = site
        qview = store.view().by_queue("express")
        # Fancy indexing necessarily copies; documented behavior.
        assert not isinstance(qview.submit_times, np.memmap)
        assert len(qview) > 0


class TestTraceEquivalence:
    def test_slicing_equivalence_vs_in_memory_trace(self, site):
        store, _ = site
        view = store.view()
        trace = view.to_trace()
        t0, t1 = store.time_range()
        lo, hi = t0 + (t1 - t0) / 3, t0 + 2 * (t1 - t0) / 3
        from_view = view.time_slice(lo, hi)
        from_trace = trace.time_slice(lo, hi)
        assert len(from_view) == len(from_trace)
        np.testing.assert_allclose(from_view.waits, from_trace.waits)
        np.testing.assert_allclose(
            from_view.submit_times, from_trace.submit_times
        )

    def test_queue_split_equivalence(self, site):
        store, _ = site
        view = store.view()
        trace = view.to_trace()
        assert set(view.queues()) == set(trace.queues())
        for queue in view.queues():
            np.testing.assert_allclose(
                view.by_queue(queue).waits, trace.by_queue(queue).waits
            )

    def test_job_protocol(self, site):
        store, _ = site
        view = store.view()
        job = view[0]
        assert job.submit_time == float(view.submit_times[0])
        assert job.queue in view.queues()
        assert len(view[:3]) == 3
        assert view[-1].submit_time == float(view.submit_times[-1])
        count = sum(1 for _ in iter(view))
        assert count == len(view)


class TestCorruption:
    def _copy_store(self, store, tmp_path):
        import shutil

        dest = tmp_path / "copy"
        shutil.copytree(store.path, dest)
        return dest

    def test_truncated_column_detected(self, site, tmp_path):
        store, _ = site
        dest = self._copy_store(store, tmp_path)
        wait_file = dest / "wait.f8"
        wait_file.write_bytes(wait_file.read_bytes()[:-16])
        with pytest.raises(CorpusError, match="truncated or corrupt"):
            CorpusStore(dest)

    def test_missing_column_detected(self, site, tmp_path):
        store, _ = site
        dest = self._copy_store(store, tmp_path)
        (dest / "procs.i4").unlink()
        with pytest.raises(CorpusError, match="missing column"):
            CorpusStore(dest)

    def test_wrong_schema_detected(self, site, tmp_path):
        store, _ = site
        dest = self._copy_store(store, tmp_path)
        manifest = json.loads((dest / "manifest.json").read_text())
        manifest["schema"] = "something-else/9"
        (dest / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CorpusError, match="schema"):
            CorpusStore(dest)

    def test_bitflip_caught_by_verify(self, site, tmp_path):
        store, _ = site
        dest = self._copy_store(store, tmp_path)
        wait_file = dest / "wait.f8"
        data = bytearray(wait_file.read_bytes())
        data[8] ^= 0xFF  # same size, different bytes
        wait_file.write_bytes(bytes(data))
        report = CorpusStore(dest).verify()
        assert not report["ok"]
        assert not report["columns"]["wait"]["match"]

    def test_not_a_store(self, tmp_path):
        with pytest.raises(CorpusError, match="manifest"):
            CorpusStore(tmp_path)


class TestColumnWriter:
    def _chunk(self, submits):
        n = len(submits)
        return {
            "submit": np.asarray(submits, dtype=np.float64),
            "wait": np.full(n, 5.0),
            "runtime": np.full(n, 60.0),
            "procs": np.full(n, 4, dtype=np.int32),
            "queue": np.zeros(n, dtype=np.int32),
            "class": np.zeros(n, dtype=np.int32),
        }

    def test_sorted_chunks_not_resorted(self, tmp_path):
        writer = ColumnWriter(tmp_path / "s", "s")
        writer.append(self._chunk([1.0, 2.0]))
        writer.append(self._chunk([3.0, 4.0]))
        writer.finalize(queue_names={0: "q"})
        store = CorpusStore(tmp_path / "s")
        assert store.manifest["etl"]["resorted"] is False

    def test_unsorted_chunks_resorted(self, tmp_path):
        writer = ColumnWriter(tmp_path / "s", "s")
        writer.append(self._chunk([5.0, 1.0]))
        writer.append(self._chunk([3.0]))
        writer.finalize(queue_names={0: "q"})
        store = CorpusStore(tmp_path / "s")
        assert store.manifest["etl"]["resorted"] is True
        assert list(store.column("submit")) == [1.0, 3.0, 5.0]

    def test_ragged_chunk_rejected(self, tmp_path):
        writer = ColumnWriter(tmp_path / "s", "s")
        chunk = self._chunk([1.0, 2.0])
        chunk["procs"] = np.asarray([4], dtype=np.int32)
        with pytest.raises(CorpusError, match="ragged"):
            writer.append(chunk)
        writer.abort()

    def test_abort_removes_temp_dir(self, tmp_path):
        writer = ColumnWriter(tmp_path / "s", "s")
        writer.append(self._chunk([1.0]))
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_finalize_refuses_existing_dest(self, tmp_path):
        dest = tmp_path / "s"
        writer = ColumnWriter(dest, "s")
        writer.append(self._chunk([1.0]))
        writer.finalize()
        writer2 = ColumnWriter(dest, "s")
        writer2.append(self._chunk([2.0]))
        with pytest.raises(CorpusError, match="already exists"):
            writer2.finalize()
        # The original store survives untouched.
        assert list(CorpusStore(dest).column("submit")) == [1.0]

    def test_empty_store_round_trips(self, tmp_path):
        writer = ColumnWriter(tmp_path / "s", "s")
        writer.finalize()
        store = CorpusStore(tmp_path / "s")
        assert store.rows == 0
        assert len(store.view()) == 0
        assert store.view().queues() == []
