"""Parallel corpus replay: identity, planning, caching, failure surface.

The contract under test is the tentpole guarantee of the parallel
planner: for a fixed unit plan (site + thresholds), the merged per-queue
report is *bit-identical* whether the units run serially in-process, in
a pool of any size, or are served from the persistent cache — and the
per-unit cache goes stale if and only if the unit's own data changes.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import runtime
from repro.corpus.etl import ingest
from repro.corpus.fixtures import generate_corpus_fixture
from repro.corpus.replay import (
    ReplayUnit,
    _strip_volatile,
    plan_units,
    progress_printer,
    replay_store,
)
from repro.runtime.engine import Task, WorkerError
from repro.verify import faults

JOBS = 4000
MIN_QUEUE = 200


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("parallel-replay")
    log = tmp / "fix.swf.gz"
    generate_corpus_fixture(log, jobs=JOBS, seed=97)
    built, _ = ingest(log, tmp / "site", site="par-site")
    return built


# Serial oracle reports, memoized per split threshold: the property below
# compares every (jobs, threshold) combination against the same baseline.
_baselines = {}


def _serial_baseline(store, threshold):
    if threshold not in _baselines:
        _baselines[threshold] = _strip_volatile(replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            split_threshold=threshold, jobs=1, cache=False,
            record_series=True,
        ))
    return _baselines[threshold]


class TestBitIdentity:
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        jobs=st.sampled_from([1, 2, 4]),
        threshold=st.sampled_from([300, 450, 700, 10**9]),
    )
    def test_rows_and_series_identical_across_jobs(self, store, jobs, threshold):
        """Coverage rows AND replay series match the serial oracle exactly
        for every worker count and chunk-split boundary."""
        report = replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            split_threshold=threshold, jobs=jobs, cache=False,
            record_series=True,
        )
        assert _strip_volatile(report) == _serial_baseline(store, threshold)

    def test_split_forces_chunks_and_unsplit_matches_legacy(self, store):
        split = replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            split_threshold=300, jobs=2, cache=False,
        )
        chunked = [q for q, row in split["queues"].items()
                   if row.get("chunks", 1) > 1]
        assert chunked, "no queue was large enough to shard"
        # Counts are plan-independent even though medians may differ
        # slightly between chunked and whole-queue training regimes.
        whole = replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            jobs=1, cache=False,
        )
        assert split["jobs_replayed"] == whole["jobs_replayed"]
        assert sorted(split["queues"]) == sorted(whole["queues"])

    def test_view_path_matches_store_path(self, store):
        from_view = replay_store(
            store.view(), methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
        )
        from_store = replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            jobs=1, cache=False,
        )
        assert (_strip_volatile(from_view)["queues"]
                == _strip_volatile(from_store)["queues"])


class TestPlanner:
    @settings(max_examples=40, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=5000),
                       min_size=1, max_size=6),
        threshold=st.integers(min_value=50, max_value=6000),
    )
    def test_plan_covers_each_queue_exactly_once(self, sizes, threshold):
        class FakeView:
            def queues(self):
                return [f"q{i}" for i in range(len(sizes))]

            def queue_rows(self, queue):
                return sizes[int(queue[1:])]

        units, skipped = plan_units(
            FakeView(), site="s", min_queue_jobs=MIN_QUEUE,
            split_threshold=threshold,
        )
        for i, n in enumerate(sizes):
            name = f"q{i}"
            mine = sorted(
                (u for u in units if u.queue == name), key=lambda u: u.lo
            )
            if n < MIN_QUEUE:
                assert skipped[name] == n and not mine
                continue
            # Scored ranges tile [0, n) with no gaps or overlaps.
            assert mine[0].lo == 0 and mine[-1].hi == n
            for a, b in zip(mine, mine[1:]):
                assert a.hi == b.lo
            for u in mine:
                assert u.n_chunks == len(mine)
                assert u.queue_rows == n
                assert 0 <= u.warmup <= u.lo
                if u.chunk == 0:
                    assert u.warmup == 0
                else:
                    assert u.warmup >= 1
                assert u.hi - u.lo >= 1
        # Largest-cost-first dispatch order.
        costs = [u.cost for u in units]
        assert costs == sorted(costs, reverse=True)

    def test_unit_labels_are_unique(self, store):
        units, _ = plan_units(
            store.view(), site="par-site", min_queue_jobs=MIN_QUEUE,
            split_threshold=300,
        )
        labels = [u.label for u in units]
        assert len(labels) == len(set(labels))


class TestIncrementalCache:
    def _replay(self, store, **kw):
        return replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            split_threshold=10**9, jobs=1, cache=True, **kw
        )

    def test_mutating_one_queue_recomputes_only_that_queue(
        self, store, tmp_path
    ):
        runtime.configure(cache=True, cache_dir=str(tmp_path / "cache"))
        try:
            cold = self._replay(store)
            assert cold["provenance"]["cache"]["hits"] == 0
            n_units = len(cold["provenance"]["units"])
            warm = self._replay(store)
            assert warm["provenance"]["cache"] == {
                "enabled": True, "hits": n_units, "misses": 0,
            }
            assert _strip_volatile(warm) == _strip_volatile(cold)

            # Flip one wait value of one queue directly on disk — behind
            # the manifest's back, the way no ETL ever would.
            view = store.view()
            queue = view.queues()[0]
            qid = [k for k, v in view.queue_names.items() if v == queue][0]
            row = int(np.flatnonzero(
                np.asarray(view.queue_ids) == qid
            )[5])
            wait = np.memmap(store.path / "wait.f8", dtype="<f8", mode="r+")
            wait[row] += 1.0
            wait.flush()
            del wait
            try:
                dirty = self._replay(store)
            finally:
                wait = np.memmap(store.path / "wait.f8", dtype="<f8", mode="r+")
                wait[row] -= 1.0
                wait.flush()
                del wait
            # Exactly the mutated queue's unit went stale.
            assert dirty["provenance"]["cache"]["misses"] == 1
            assert dirty["provenance"]["cache"]["hits"] == n_units - 1
            recomputed = [
                u["unit"] for u in dirty["provenance"]["units"]
                if not u["cached"]
            ]
            assert len(recomputed) == 1 and f"/{queue}#" in recomputed[0]
        finally:
            runtime.reset_configuration()

    def test_cache_disabled_reports_provenance(self, store, tmp_path):
        runtime.configure(cache=True, cache_dir=str(tmp_path / "cache"))
        try:
            self._replay(store)  # populate
            off = replay_store(
                store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
                split_threshold=10**9, jobs=1, cache=False,
            )
        finally:
            runtime.reset_configuration()
        assert off["provenance"]["cache"]["enabled"] is False
        assert off["provenance"]["cache"]["hits"] == 0


class TestFailureAndProgress:
    def test_worker_error_carries_unit_label(self, store):
        faults.install("corpus.replay.unit:raise@1")
        try:
            with pytest.raises(WorkerError) as excinfo:
                replay_store(
                    store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
                    jobs=1, cache=False,
                )
        finally:
            faults.reset()
        assert "par-site/" in str(excinfo.value)
        assert "injected corpus.replay.unit fault" in str(excinfo.value)

    def test_progress_callback_ticks_per_unit(self, store):
        seen = []
        report = replay_store(
            store, methods=["bmbp"], min_queue_jobs=MIN_QUEUE,
            jobs=1, cache=False, progress=lambda d, t: seen.append((d, t)),
        )
        total = len(report["provenance"]["units"])
        assert seen == [(i + 1, total) for i in range(total)]

    def test_progress_printer_writes_eta_line(self, capsys):
        import io

        stream = io.StringIO()
        cb = progress_printer(stream=stream)
        cb(1, 2)
        cb(2, 2)
        text = stream.getvalue()
        assert "1/2 units" in text and "ETA" in text
        assert text.endswith("\n")


class TestCli:
    def test_corpus_replay_cli_jobs_and_progress(self, store, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main([
            "corpus", "replay", str(store.path), "--jobs", "2",
            "--no-cache", "--progress", "--min-queue-jobs", str(MIN_QUEUE),
            "--methods", "bmbp", "--json", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["provenance"]["jobs"] == 2
        assert report["provenance"]["cache"]["enabled"] is False
        captured = capsys.readouterr()
        assert "units" in captured.err  # the --progress line
        assert "2 worker(s)" in captured.out
