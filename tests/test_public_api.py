"""The public API surface: what a downstream user imports must exist."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_headline_exports(self):
        from repro import (  # noqa: F401
            BMBPPredictor,
            BoundKind,
            HistoryWindow,
            IntervalPredictor,
            LogNormalPredictor,
            QuantileBank,
            QuantilePredictor,
            lower_confidence_bound,
            two_sided_confidence_interval,
            upper_confidence_bound,
        )

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.stats",
            "repro.workloads",
            "repro.simulator",
            "repro.scheduler",
            "repro.baselines",
            "repro.service",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"

    def test_no_private_leaks_in_all(self):
        import repro

        for name in repro.__all__:
            assert not name.startswith("_") or name == "__version__"

    def test_cli_entry_point(self):
        from repro.cli import main

        assert callable(main)
