"""Cross-site submission advisor (the paper's Figure 1 scenario).

A user with allocations at two centers wants to know where a job submitted
*right now* would start sooner, with quantified confidence.  We regenerate
the synthetic SDSC Datastar and TACC Lonestar "normal" queues, replay BMBP
over both, and compare the bounds a user would have been quoted on the
paper's example day (February 24, 2005).

Run:  python examples/compare_sites.py
"""

import numpy as np

from repro.core.bmbp import BMBPPredictor
from repro.experiments.runner import ExperimentConfig, trace_for
from repro.experiments.table8 import SECONDS_PER_DAY, day_epoch
from repro.simulator.replay import ReplayConfig, replay_single
from repro.workloads.spec import spec_for

SITES = (("datastar", "normal"), ("tacc2", "normal"))


def human(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f} s"
    if seconds < 7200:
        return f"{seconds / 60:.0f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"


def main() -> None:
    config = ExperimentConfig(scale=0.2)  # lighter than the bench default
    day_start = day_epoch("2/05", 24)
    window = (day_start, day_start + SECONDS_PER_DAY)

    print("95%-confidence upper bounds on the 0.95 quantile of queuing delay")
    print("for a job submitted on 2005-02-24 (synthetic reproduction):\n")

    medians = {}
    for machine, queue in SITES:
        trace = trace_for(spec_for(machine, queue), config)
        result = replay_single(
            trace,
            BMBPPredictor(),
            ReplayConfig(record_series=True, series_window=window),
        )
        times, bounds = result.series
        label = f"{machine}/{queue}"
        medians[label] = float(np.median(bounds)) if bounds.size else float("nan")
        print(f"  {label:18s} day-median bound: {human(medians[label]):>10s} "
              f"(range {human(bounds.min())} .. {human(bounds.max())}, "
              f"{times.size} refits)")

    best = min(medians, key=medians.get)
    ratio = max(medians.values()) / max(min(medians.values()), 1.0)
    print(f"\n=> submit to {best}: expected worst-case start is "
          f"~{ratio:,.0f}x sooner, with the same 95% certainty.")
    print("   (The paper's real-log version of this gap: 12 seconds at TACC"
          " vs ~4 days at SDSC.)")


if __name__ == "__main__":
    main()
