"""Quickstart: predict a bound on your job's queuing delay.

The core use case from the paper's introduction: you are about to submit a
job to a busy batch queue and want to know, with 95% certainty, the longest
you are likely to wait.  BMBP needs nothing but the queue's observed
history of wait times.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BMBPPredictor, BoundKind


def main() -> None:
    rng = np.random.default_rng(42)

    # Pretend this came from your site's accounting log: the last ~2000
    # wait times (seconds) observed on the queue, heavy-tailed as always.
    history = rng.lognormal(mean=6.0, sigma=1.8, size=2000)

    # --- the three-line version -----------------------------------------
    predictor = BMBPPredictor(quantile=0.95, confidence=0.95)
    for wait in history:
        predictor.observe(wait)
    predictor.finish_training()

    bound = predictor.predict()
    print("BMBP, 95% confidence upper bound on the 0.95 quantile:")
    print(f"  your job will start within {bound:,.0f} s (~{bound / 3600:.1f} h)")
    print(f"  (history: {len(predictor.history)} waits, "
          f"change-point threshold: {predictor.miss_threshold} consecutive misses)")

    # --- a fuller picture: several quantiles, both directions -----------
    print("\nQueue outlook (all bounds at 95% confidence):")
    lower = BMBPPredictor(quantile=0.25, confidence=0.95, kind=BoundKind.LOWER)
    for wait in history:
        lower.observe(wait)
    lower.finish_training()
    print(f"  at least a 25% chance you wait more than {lower.predict():,.0f} s")

    for q in (0.5, 0.75, 0.95):
        upper = BMBPPredictor(quantile=q, confidence=0.95)
        for wait in history:
            upper.observe(wait)
        upper.finish_training()
        print(f"  {q:.0%} of jobs start within {upper.predict():,.0f} s")

    # --- live operation ---------------------------------------------------
    # In deployment you keep observing and re-quoting; when the queue's
    # behaviour shifts, consecutive misses trigger history trimming and the
    # bound re-learns automatically.
    print("\nSimulating a sudden 10x slowdown of the queue ...")
    for wait in rng.lognormal(mean=6.0 + np.log(10.0), sigma=1.8, size=300):
        predictor.observe(wait, predicted=predictor.predict())
        predictor.refit()
    print(f"  bound after adaptation: {predictor.predict():,.0f} s "
          f"({predictor.detector.change_points_seen} change points detected)")


if __name__ == "__main__":
    main()
