"""BMBP on organically scheduled waits (the full substrate, end to end).

Rather than replaying a wait-time trace, this example *creates* one: a
128-processor space-shared machine runs a bursty job stream under EASY
backfilling, then under a priority policy whose weights an administrator
silently inverts mid-run — exactly the hidden-policy-change environment the
paper argues batch users live in.  BMBP and the full-history log-normal
method then compete on the resulting waits.

Run:  python examples/scheduler_substrate.py
"""

from repro.core.bmbp import BMBPPredictor
from repro.core.lognormal import LogNormalPredictor
from repro.scheduler import (
    ClusterWorkloadConfig,
    EasyBackfillPolicy,
    PriorityPolicy,
    generate_jobs,
    simulate,
)
from repro.simulator.replay import replay


def evaluate(trace, title):
    results = replay(
        trace,
        {
            "BMBP": BMBPPredictor(),
            "log-normal (full history)": LogNormalPredictor(trim=False),
        },
    )
    print(f"\n{title}")
    summary = trace.summary()
    print(f"  workload: {summary.count} jobs, mean wait {summary.mean:,.0f} s, "
          f"median {summary.median:,.0f} s")
    for name, result in results.items():
        verdict = "correct" if result.correct else "FAILS"
        print(f"  {name:28s} coverage {result.fraction_correct:.3f}  ({verdict}; "
              f"target >= 0.95, {result.n_evaluated} predictions)")


def main() -> None:
    workload = ClusterWorkloadConfig(
        n_jobs=5000, machine_procs=128, utilization=0.88, seed=11
    )

    easy_trace = simulate(
        generate_jobs(workload), 128, EasyBackfillPolicy(), trace_name="easy"
    )
    evaluate(easy_trace, "EASY backfilling (stable policy):")

    # Priority scheduling with a silent mid-run administrator inversion:
    # at t=2e6 s "low" jobs suddenly outrank "high" ones (say, a deadline
    # demo), and at t=4.5e6 s the weights are quietly restored.
    policy = PriorityPolicy(
        weights={"high": 10.0, "normal": 0.0, "low": -10.0}, aging_rate=0.02
    )
    retunes = [
        (2.0e6, {"high": -5.0, "normal": 0.0, "low": 12.0}),
        (4.5e6, {"high": 10.0, "normal": 0.0, "low": -10.0}),
    ]
    priority_trace = simulate(
        generate_jobs(workload), 128, policy,
        retune_schedule=retunes, trace_name="priority",
    )
    evaluate(priority_trace, "Priority queues with two silent admin retunes:")

    print("\nThe point: on waits produced by real scheduling dynamics — not by"
          "\nany parametric model — BMBP's distribution-free bound holds while"
          "\nthe full-history parametric fit does not.")


if __name__ == "__main__":
    main()
