"""A live forecasting service in front of a running batch scheduler.

This example wires the two substrates together the way a deployment would:
the space-shared scheduler simulator plays the role of the real machine,
and a :class:`QueueForecaster` consumes its submit/start events in real
time — quoting a bound to each arriving user, learning each wait when the
job starts, surviving a "daemon restart" via state persistence, and
adapting when the administrator silently re-prioritizes the queues.

Run:  python examples/forecaster_service.py
"""

import tempfile
from pathlib import Path

from repro.scheduler import (
    ClusterWorkloadConfig,
    PriorityPolicy,
    generate_jobs,
    simulate,
)
from repro.service import ForecasterConfig, QueueForecaster


def main() -> None:
    # 1. Produce the machine's history: a 128-proc machine under priority
    #    scheduling, with the admin inverting queue weights mid-run.
    workload = ClusterWorkloadConfig(
        n_jobs=6000, machine_procs=128, utilization=0.9, seed=17
    )
    policy = PriorityPolicy(
        weights={"high": 10.0, "normal": 0.0, "low": -10.0}, aging_rate=0.02
    )
    trace = simulate(
        generate_jobs(workload), 128, policy,
        retune_schedule=[(3.0e6, {"high": -10.0, "normal": 0.0, "low": 10.0})],
        trace_name="machine",
    )

    # 2. Feed the event stream to the forecaster in time order, exactly as
    #    a log-tailing shim would: submissions quote, starts teach.
    forecaster = QueueForecaster(ForecasterConfig(training_jobs=150, by_bin=False))
    events = []
    for i, job in enumerate(trace):
        events.append((job.submit_time, 0, f"job{i}", job))
        events.append((job.start_time, 1, f"job{i}", job))
    events.sort(key=lambda e: (e[0], e[1]))

    quoted = hits = 0
    restart_at = len(events) // 2
    state_path = Path(tempfile.gettempdir()) / "bmbp_forecaster_state.json"
    for n, (when, kind, job_id, job) in enumerate(events):
        if n == restart_at:
            # 3. Daemon restart: persist, drop everything, reload.
            forecaster.save(state_path)
            forecaster = QueueForecaster.load(state_path)
        if kind == 0:
            bound = forecaster.job_submitted(job_id, job.queue, job.procs, when)
            if bound is not None:
                quoted += 1
                hits += job.wait <= bound
        else:
            try:
                forecaster.job_started(job_id, when)
            except KeyError:
                pass  # job started after the trace's last submission window

    print("Forecaster state after the full run:")
    print(forecaster.describe())
    print(f"\nquoted bounds for {quoted} submissions; "
          f"{hits / quoted:.1%} held (target >= 95%), across a daemon "
          f"restart and a silent priority inversion.")

    print("\nCurrent advice for a new submission:")
    for queue in forecaster.queues():
        bound = forecaster.forecast(queue)
        if bound is not None:
            print(f"  {queue:8s} 95% sure to start within {bound:,.0f} s")


if __name__ == "__main__":
    main()
