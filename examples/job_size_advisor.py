"""Job-size advisor (the paper's Figure 2 scenario).

"Should I ask for fewer processors to start sooner?"  Common wisdom says
yes — small jobs backfill.  The paper's surprise: on SDSC Datastar in June
2004, *larger* jobs were favored, and BMBP, fed per-size-range histories,
would have told users so.  This example reproduces that advisory.

Run:  python examples/job_size_advisor.py
"""

import numpy as np

from repro.core.bmbp import BMBPPredictor
from repro.experiments.runner import ExperimentConfig, trace_for
from repro.experiments.table8 import SECONDS_PER_DAY, day_epoch
from repro.simulator.replay import ReplayConfig, replay_single
from repro.workloads.bins import PROC_BINS, bin_label, partition_by_bin
from repro.workloads.spec import spec_for


def human(seconds: float) -> str:
    if seconds < 7200:
        return f"{seconds / 60:.0f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"


def main() -> None:
    config = ExperimentConfig(scale=0.2)
    trace = trace_for(spec_for("datastar", "normal"), config)
    parts = partition_by_bin(trace)

    month_start = day_epoch("6/04", 1)
    window = (month_start, month_start + 30 * SECONDS_PER_DAY)

    print("datastar/normal, June 2004 — 95%-confidence worst-case wait by "
          "requested processor count:\n")
    results = {}
    for bin_range in PROC_BINS:
        label = bin_label(bin_range)
        sub = parts[label]
        if len(sub) < 300:
            print(f"  {label:>6s} procs: too few jobs for a bound ({len(sub)})")
            continue
        result = replay_single(
            sub,
            BMBPPredictor(),
            ReplayConfig(record_series=True, series_window=window),
        )
        _, bounds = result.series
        if bounds.size == 0:
            print(f"  {label:>6s} procs: no bound available in June")
            continue
        median = float(np.median(bounds))
        results[label] = median
        print(f"  {label:>6s} procs: typically within {human(median):>9s} "
              f"(month range {human(bounds.min())} .. {human(bounds.max())})")

    if "1-4" in results and "17-64" in results:
        print()
        if results["17-64"] < results["1-4"]:
            factor = results["1-4"] / results["17-64"]
            print(f"=> counterintuitive but true this month: a 17-64 processor "
                  f"request starts ~{factor:.0f}x sooner than a 1-4 processor one.")
            print("   (The paper verified the same inversion in the real logs.)")
        else:
            print("=> small jobs are favored this month, as users usually expect.")


if __name__ == "__main__":
    main()
