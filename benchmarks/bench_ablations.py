"""Benchmark: the ablation suite (design-choice checks from DESIGN.md).

Shape checks:

* exact vs normal-approximation ranks: indistinguishable coverage (the
  Appendix's justification for the approximation);
* epoch 0 vs 300 s vs 3600 s: minimal effect (Section 5.1's claim);
* disabling history trimming degrades BMBP on a nonstationary queue
  (Section 4.1's motivation);
* the max-observed strawman is "correct" but an order of magnitude less
  accurate than BMBP (Section 5's correctness-vs-accuracy argument);
* on organic scheduler-generated waits, BMBP beats the full-history
  log-normal's coverage.
"""

from benchmarks.conftest import run_once
from repro.experiments.ablations import render, run_ablations


def _by(rows, ablation):
    return {row.variant: row for row in rows if row.ablation == ablation}


def test_ablations(benchmark, config, fresh):
    rows = run_once(benchmark, run_ablations, config)
    print()
    print(render(rows))

    ranks = _by(rows, "rank-method")
    assert abs(ranks["exact"].fraction_correct - ranks["normal"].fraction_correct) < 0.01

    epochs = _by(rows, "epoch-length")
    values = [row.fraction_correct for row in epochs.values()]
    assert max(values) - min(values) < 0.01  # "the effect ... was minimal"

    trims = _by(rows, "history-trimming")
    assert trims["bmbp-trim"].fraction_correct > trims["bmbp-notrim"].fraction_correct
    assert trims["bmbp-trim"].fraction_correct >= 0.95

    baselines = _by(rows, "baselines")
    assert baselines["max-observed"].fraction_correct >= 0.99
    assert baselines["max-observed"].median_ratio < baselines["bmbp"].median_ratio
    assert baselines["mean-wait"].fraction_correct < 0.95

    sched = _by(rows, "scheduler-substrate")
    for scenario in ("easy-backfill", "priority-retuned"):
        bmbp = sched[f"{scenario}/bmbp"].fraction_correct
        notrim = sched[f"{scenario}/logn-notrim"].fraction_correct
        assert bmbp > notrim
        assert bmbp >= 0.93
