"""Benchmark: grouping strategies (population vs fixed bins vs clusters).

Shape checks: every strategy keeps coverage at or above 0.95 on the
size-sensitive queues, and the adaptive clusterer finds real structure on
datastar/normal (whose June regime makes size matter) while refusing to
invent structure where the per-size differences are noise.
"""

from benchmarks.conftest import run_once
from repro.experiments.clustering_eval import render, run_clustering_eval


def test_clustering(benchmark, config, fresh):
    rows = run_once(benchmark, run_clustering_eval, config)
    print()
    print(render(rows))

    by = {(r.machine, r.queue, r.strategy): r for r in rows}
    for row in rows:
        assert row.fraction_correct >= 0.945, (row.machine, row.queue, row.strategy)

    assert by[("datastar", "normal", "clustered")].n_groups >= 2
