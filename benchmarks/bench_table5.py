"""Benchmark: regenerate Table 5 (BMBP correctness by processor bin).

Shape checks: the paper's Table 5 has *no* asterisks — "BMBP makes the
desired percentage of correct predictions in each case" — and the dash
pattern (cells under 1000 jobs) matches the published table because the
generator allocates processor counts to reproduce it.
"""

from benchmarks.conftest import run_once
from repro.experiments.bin_tables import BIN_LABELS
from repro.experiments.table5 import run_table5
from repro.experiments.bin_tables import render_bin_table


def test_table5(benchmark, config, fresh):
    rows = run_once(benchmark, run_table5, config)
    print()
    print(render_bin_table(rows, "bmbp", 5, "BMBP"))

    assert len(rows) == 27

    populated = failures = 0
    for row in rows:
        for i, label in enumerate(BIN_LABELS):
            cell_present = row.cells[label] is not None
            # Dash pattern mirrors the paper's Table 5.
            assert cell_present == row.spec.table5_bins[i], (row.spec.label, label)
            if cell_present:
                populated += 1
                if row.failed("bmbp", label):
                    failures += 1
                    if row.spec.key == ("lanl", "short"):
                        # The end-of-log surge lands in this queue's only
                        # populated bin; the paper's by-bin table happens
                        # to dodge it (see EXPERIMENTS.md).
                        continue
                    # Near-threshold at worst.
                    assert row.fraction("bmbp", label) > 0.92

    assert populated >= 45  # the paper's table has ~50 populated cells
    # Paper: zero failing cells.  The synthetic strongly-nonstationary
    # queues sit by design at the coverage knife edge, and subdividing them
    # by bin halves the margins, so a handful of cells land 0.93-0.95
    # (documented in EXPERIMENTS.md); the clean separation from the
    # log-normal methods (Tables 6/7) is the preserved shape.
    assert failures <= 8
