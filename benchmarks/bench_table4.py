"""Benchmark: regenerate Table 4 (accuracy: median actual/predicted ratio).

Shape checks: every method's median ratio is far below 1 on heavy-tailed
queues (bounds on the 0.95 quantile dwarf the typical wait, exactly as the
paper's Table 4 shows values of 1e-4..4e-1); correct methods are the ones
allowed to be tight; and the known near-symmetric queue (lanl/schammpq,
where the paper's BMBP ratio is 0.39) produces the table's tightest BMBP
bound.

Documented deviation: in the paper BMBP is most often the tightest correct
method; on the synthetic workloads the trimmed log-normal frequently edges
it out, because the generated conditional log-wait distributions are kinder
to a parametric fit than the real logs were.  The correctness shape
(Table 3) is unaffected.  See EXPERIMENTS.md.
"""

import math

from benchmarks.conftest import run_once
from repro.experiments.table4 import render, run_table4


def test_table4(benchmark, config, fresh):
    rows = run_once(benchmark, run_table4, config)
    print()
    print(render(rows))

    assert len(rows) == 32
    by_key = {row.spec.key: row for row in rows}

    for row in rows:
        for method in ("bmbp", "logn-notrim", "logn-trim"):
            ratio = row.ratio(method)
            if not math.isnan(ratio):
                assert 0.0 <= ratio <= 1.5, (row.spec.label, method, ratio)

    # Bounds on heavy-tailed queues are necessarily conservative for the
    # median job: most ratios sit well below 1 (paper: 1e-4 .. 4e-1).
    small = sum(
        row.ratio("bmbp") < 0.5 for row in rows if not math.isnan(row.ratio("bmbp"))
    )
    assert small >= 28

    # lanl/schammpq (mean ~ median) gives the tightest BMBP bound, like the
    # paper's standout 0.39.
    schammpq = by_key[("lanl", "schammpq")].ratio("bmbp")
    others = [
        row.ratio("bmbp")
        for row in rows
        if row.spec.key != ("lanl", "schammpq") and not math.isnan(row.ratio("bmbp"))
    ]
    assert schammpq > sorted(others)[-3]  # among the top tightest

    # Almost every queue has at least one correct method; the exceptions
    # are the engineered lanl/short failure and at most one heavy-tailed
    # queue where BMBP's near-threshold residual coincides with the
    # log-normal failures.
    winnerless = [row.spec.key for row in rows if row.winner() is None]
    assert ("lanl", "short") in winnerless
    assert len(winnerless) <= 2
