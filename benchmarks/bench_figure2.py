"""Benchmark: regenerate Figure 2 (job-size inversion on datastar/normal).

Shape check: during June 2004 the 17-64 processor bound sits *below* the
1-4 processor bound for the large majority of the month — the inversion the
paper found so surprising that the authors audited the raw logs.
"""

from benchmarks.conftest import run_once
from repro.experiments.figure2 import render, run_figure2


def test_figure2(benchmark, config, fresh):
    result = run_once(benchmark, run_figure2, config)
    print()
    print(render(result))

    assert result.inversion_fraction() >= 0.8
    for label in ("1-4", "17-64"):
        times, bounds = result.series[label]
        assert times.size > 0
        assert (bounds > 0).all()
