"""Benchmark: regenerate Table 7 (log-normal with trimming, by bin).

Shape check: trimming repairs most of Table 6's failures but not all of
them (the paper's Table 7 still carries asterisks), and it never does worse
than NoTrim overall.
"""

from benchmarks.conftest import run_once
from repro.experiments.bin_tables import BIN_LABELS, render_bin_table
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7


def test_table7(benchmark, config, fresh):
    rows = run_once(benchmark, run_table7, config)
    print()
    print(render_bin_table(rows, "logn-trim", 7, "log-normal with trimming"))

    trim_failures = notrim_failures = 0
    for row in rows:
        for label in BIN_LABELS:
            if row.cells[label] is not None:
                trim_failures += bool(row.failed("logn-trim", label))
                notrim_failures += bool(row.failed("logn-notrim", label))

    assert trim_failures < notrim_failures
    assert trim_failures >= 1  # but trimming alone is not a cure-all
