"""Benchmark: regenerate Table 3 (correctness by queue, three methods).

Shape checks against the paper:

* BMBP reaches 0.95 correctness on (essentially) every queue — the paper's
  single failure is lanl/short, whose end-of-log surge is reproduced; we
  allow at most one additional near-threshold miss.
* The full-history log-normal fails on many queues (14 in the paper).
* Trimming rescues most but not all of those failures.
* BMBP is never wildly conservative: its correct fractions stay below 1.0
  on large queues (Section 3's meaningfulness argument).
"""

from benchmarks.conftest import run_once
from repro.experiments.table3 import render, run_table3


def test_table3(benchmark, config, fresh):
    rows = run_once(benchmark, run_table3, config)
    print()
    print(render(rows))

    assert len(rows) == 32
    by_key = {row.spec.key: row for row in rows}

    # BMBP: correct everywhere except lanl/short (plus at most one
    # near-threshold residual).
    bmbp_failures = {row.spec.key for row in rows if row.failed("bmbp")}
    assert ("lanl", "short") in bmbp_failures
    assert len(bmbp_failures) <= 2
    for key in bmbp_failures - {("lanl", "short")}:
        assert by_key[key].fraction("bmbp") > 0.93  # near-threshold only

    # The paper's NoTrim column has 14 asterisks.
    notrim_failures = sum(row.failed("logn-notrim") for row in rows)
    assert 10 <= notrim_failures <= 18

    # Trimming rescues most failures but not all (paper: 5 incl. lanl/short).
    trim_failures = sum(row.failed("logn-trim") for row in rows)
    assert 2 <= trim_failures < notrim_failures

    # Correct-but-meaningful: on large queues BMBP stays below 1.0.
    large = [row for row in rows if row.results["bmbp"].n_evaluated > 3000]
    assert all(row.fraction("bmbp") < 1.0 for row in large)
