"""Scheduling benchmark: bound-aware policies vs the clairvoyant oracle.

Replays the committed scenario set under the full policy table — three
non-predictive baselines, the three bound-aware predictive policies, and
the perfect-estimate EASY oracle — and asserts the acceptance shape of
``bmbp bench-sched``: every predictive policy's aggregate mean oracle
regret is strictly below the best non-predictive baseline's, and the
admission-hold policy actually held jobs (a gate won by never engaging
the feedback loop would be vacuous).  Writes the ``BENCH_sched.json``
artifact at the repository root.

Marked ``slow`` like the other paper-scale benchmarks; run with
``pytest benchmarks/bench_sched.py -m slow``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.scheduler.evaluate import BENCH_SCHED_SCHEMA, run_sched_bench

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sched.json"

#: Gate multiplier on the best baseline's regret; mirrors the CI knob so a
#: slow box can be loosened the same way (BMBP_BENCH_MAX_SCHED_REGRET_RATIO).
MAX_REGRET_RATIO = float(os.environ.get("BMBP_BENCH_MAX_SCHED_REGRET_RATIO", 1.0))


def test_predictive_policies_beat_every_baseline(benchmark):
    report = benchmark.pedantic(
        run_sched_bench,
        kwargs={
            "max_regret_ratio": MAX_REGRET_RATIO,
            "artifact": ARTIFACT,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert report["schema"] == BENCH_SCHED_SCHEMA

    gate = report["gate"]
    assert gate["passed"], {
        "best_baseline": gate["best_baseline"],
        "threshold_s": gate["threshold_s"],
        "aggregate": {
            name: round(stats["mean_regret_s"], 1)
            for name, stats in report["aggregate"].items()
        },
    }

    # The closed loop must actually close: holds engaged somewhere, and
    # every scenario scored the whole policy table.
    total_holds = 0
    for entry in report["scenarios"]:
        assert len(entry["policies"]) == 6
        total_holds += entry["policies"]["predictive-hold"]["holds"]
    assert total_holds > 0

    # Predictive policies defend the class contracts they can see: the
    # aggregate violation rate is no worse than the best baseline's.
    best = gate["best_baseline"]
    baseline_violations = report["aggregate"][best]["violation_rate"]
    for name, stats in report["aggregate"].items():
        if name.startswith("predictive-"):
            assert stats["violation_rate"] <= baseline_violations + 1e-12

    assert ARTIFACT.is_file()
