"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at the default
experiment scale and *asserts the paper's qualitative shape* on the result —
who wins, what fails, where the crossovers fall — so a benchmark run is also
a reproduction check.  Timings use one round (the workloads are multi-second
replays, not microbenchmarks); the in-process caches are cleared in setup so
every benchmark measures real work.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentConfig, clear_caches


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The default paper-reproduction configuration."""
    return ExperimentConfig()


@pytest.fixture
def fresh():
    """Clear experiment caches so the benchmark times real work."""
    clear_caches()
    return clear_caches


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1, warmup_rounds=0)
