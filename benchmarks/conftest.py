"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at the default
experiment scale and *asserts the paper's qualitative shape* on the result —
who wins, what fails, where the crossovers fall — so a benchmark run is also
a reproduction check.  Timings use one round (the workloads are multi-second
replays, not microbenchmarks); the in-process and on-disk caches are
bypassed in setup so every benchmark measures real work.

All paper-scale benchmarks are marked ``slow`` and excluded from the
default ``pytest`` run; ``bench_replay_smoke`` stays fast and unmarked.
Run the full set with ``pytest benchmarks -m slow`` (or ``-m ''``).
"""

from __future__ import annotations

import pytest

from repro import runtime
from repro.experiments.runner import ExperimentConfig, clear_caches

#: Benchmark modules exempt from the ``slow`` marker (fast smoke checks).
_FAST_MODULES = {"bench_replay_smoke"}


def pytest_collection_modifyitems(items):
    for item in items:
        if item.module.__name__.rpartition(".")[2] not in _FAST_MODULES:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """The default paper-reproduction configuration."""
    return ExperimentConfig()


@pytest.fixture
def fresh(tmp_path, monkeypatch):
    """Clear experiment caches and isolate the persistent replay cache.

    Benchmarks must time real replays: the in-process result cache is
    cleared and the on-disk cache is pointed at a private empty directory
    so a warm user cache cannot short-circuit the measured work.
    """
    monkeypatch.setenv("BMBP_CACHE_DIR", str(tmp_path / "bench-cache"))
    monkeypatch.delenv("BMBP_JOBS", raising=False)
    runtime.reset_configuration()
    clear_caches()
    yield clear_caches
    clear_caches()
    runtime.reset_configuration()


def run_once(benchmark, fn, *args):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1, warmup_rounds=0)
