"""Benchmark: quantile/confidence sensitivity sweep (Section 5's claim).

Shape checks: coverage reaches the target quantile for (essentially) every
grid combination on the well-behaved queue, tracks the quantile
monotonically everywhere, and the bound tightness (median actual/predicted)
loosens as the quantile rises.
"""

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import (
    CONFIDENCE_GRID,
    QUANTILE_GRID,
    SENSITIVITY_QUEUES,
    render,
    run_sensitivity,
)


def test_sensitivity(benchmark, config, fresh):
    rows = run_once(benchmark, run_sensitivity, config)
    print()
    print(render(rows))

    assert len(rows) == len(SENSITIVITY_QUEUES) * len(QUANTILE_GRID) * len(
        CONFIDENCE_GRID
    )

    # The well-behaved queue is correct at every combination.
    well_behaved = [r for r in rows if (r.machine, r.queue) == ("llnl", "all")]
    assert all(row.correct for row in well_behaved)

    # Across the whole grid, at most a few near-threshold misses.
    failures = [row for row in rows if not row.correct]
    assert len(failures) <= 4
    for row in failures:
        assert row.fraction_correct > row.quantile - 0.02

    # Coverage non-decreasing in quantile (per queue/confidence).
    for machine, queue in SENSITIVITY_QUEUES:
        for confidence in CONFIDENCE_GRID:
            series = [
                row.fraction_correct
                for row in rows
                if (row.machine, row.queue) == (machine, queue)
                and row.confidence == confidence
            ]
            for a, b in zip(series, series[1:]):
                assert b >= a - 0.02
