"""Benchmark: prediction latency (the paper's 8 ms/prediction claim).

The claim under test is "fast enough to deliver timely forecasts": the
full observe+refit+predict cycle must beat the paper's 8 ms mean by a wide
margin on modern hardware, for every method.
"""

from benchmarks.conftest import run_once
from repro.experiments.latency import PAPER_LATENCY_MS, render, run_latency


def test_latency(benchmark, config, fresh):
    rows = run_once(benchmark, run_latency, config)
    print()
    print(render(rows))

    for row in rows:
        assert row.mean_ms < PAPER_LATENCY_MS / 4.0, row.method
