"""Route benchmark: oracle regret and fan-out decision latency at scale.

Replays eight synthetic sites' SWF traces through real forecast daemons,
drives the routing broker over them, and asserts the acceptance shape:
the broker's mean oracle-regret is strictly the lowest of the policies,
p99 fan-out decision latency stays under 50 ms against the 8 live
backends, and killing one backend mid-run degrades (stale-cache answers,
breaker opens) without a single failed route.  Writes the
``BENCH_route.json`` artifact at the repository root.

Marked ``slow`` like the other paper-scale benchmarks; run with
``pytest benchmarks/bench_route.py -m slow``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.broker import run_route_bench
from repro.broker.evaluate import BENCH_ROUTE_SCHEMA

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_route.json"

SITES = 8
FEED_JOBS = 120
ROUTES = 120
DEGRADED_ROUTES = 40
#: Decision-latency ceiling.  50 ms is ~10x what an 8-backend fan-out
#: takes on an unloaded dev box, but latency is a property of the machine;
#: loosen on slow/shared hardware rather than letting the benchmark flake
#: (BMBP_BENCH_MAX_P99_MS=200 pytest ... -m slow).
MAX_P99_MS = float(os.environ.get("BMBP_BENCH_MAX_P99_MS", 50.0))


def test_route_regret_latency_and_degradation(benchmark):
    report = benchmark.pedantic(
        run_route_bench,
        kwargs={
            "sites": SITES,
            "feed_jobs": FEED_JOBS,
            "routes": ROUTES,
            "degraded_routes": DEGRADED_ROUTES,
            "artifact": ARTIFACT,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert report["schema"] == BENCH_ROUTE_SCHEMA

    # The paper's Figure 1 decision rule must beat the blind policies.
    regret = report["regret"]
    assert regret["probes"] > 0
    assert regret["broker_strictly_lowest"], regret["policies"]

    healthy = report["healthy"]
    assert healthy["failed_routes"] == 0
    p99 = healthy["decision_latency_ms"]["p99"]
    assert p99 is not None and p99 < MAX_P99_MS, f"p99 {p99:.1f} ms"

    # Killing one backend mid-run must not fail a single route: the dead
    # site serves stale-cache answers and its breaker opens.
    degraded = report["degraded"]
    assert degraded["failed_routes"] == 0
    assert degraded["breaker_opened"]
    assert degraded["stale_answers"] > 0
