"""Benchmark: regenerate Table 6 (log-normal NoTrim correctness by bin).

Shape check: unlike BMBP's clean Table 5, the full-history log-normal fails
in a substantial number of populated cells (the paper's Table 6 carries 14
asterisks across 50 populated cells).
"""

from benchmarks.conftest import run_once
from repro.experiments.bin_tables import BIN_LABELS, render_bin_table
from repro.experiments.table6 import run_table6


def test_table6(benchmark, config, fresh):
    rows = run_once(benchmark, run_table6, config)
    print()
    print(render_bin_table(rows, "logn-notrim", 6, "log-normal without trimming"))

    failures = populated = 0
    for row in rows:
        for label in BIN_LABELS:
            if row.cells[label] is not None:
                populated += 1
                failures += bool(row.failed("logn-notrim", label))

    assert populated >= 45
    assert failures >= 6  # the method visibly breaks without trimming
