"""Fast smoke benchmark: serial-vs-parallel replay of a single queue.

Unlike the paper-scale benchmarks in this directory (all marked ``slow``),
this one runs at a small scale so it finishes in seconds and can ride in
the default test budget.  It replays one machine/queue trace serially and
through the process pool, asserts the results are identical, and writes a
``BENCH_replay.json`` perf-trajectory artifact into the repository root.
"""

from __future__ import annotations

import time

from repro import runtime
from repro.experiments.parallel import queue_work
from repro.experiments.runner import ExperimentConfig

SMOKE = ExperimentConfig(scale=0.02, seed=7, min_jobs=500)
MACHINE, QUEUE = "llnl", "all"
REPEATS = 2  # >1 pending tasks so jobs=2 actually engages the pool


def _timed(name, jobs):
    tasks = [
        runtime.Task(func=queue_work, args=(MACHINE, QUEUE, SMOKE),
                     label=f"{MACHINE}/{QUEUE}#{i}", cache=False)
        for i in range(REPEATS)
    ]
    before = runtime.stats()
    started = time.perf_counter()
    results = runtime.run_tasks(tasks, jobs=jobs)
    elapsed = time.perf_counter() - started
    entry = runtime.bench_run_entry(
        name, runtime.stats().since(before), jobs=jobs, seconds=elapsed
    )
    return results, entry


def test_replay_smoke(benchmark, fresh):
    serial_results, serial_entry = _timed("replay-serial", jobs=1)

    def parallel():
        return _timed("replay-parallel", jobs=2)

    parallel_results, parallel_entry = benchmark.pedantic(
        parallel, rounds=1, iterations=1, warmup_rounds=0
    )

    # Parallel replay must be byte-identical to serial, not merely close.
    for s, p in zip(serial_results, parallel_results):
        assert set(s) == set(p)
        for method in s:
            assert s[method].n_evaluated == p[method].n_evaluated
            assert s[method].n_correct == p[method].n_correct
            assert s[method].ratios == p[method].ratios

    path = runtime.write_bench_artifact(
        "BENCH_replay.json", [serial_entry, parallel_entry]
    )
    print()
    print(f"wrote {path}")
    for entry in (serial_entry, parallel_entry):
        print(f"  {entry['name']}: jobs={entry['jobs']} "
              f"seconds={entry['seconds']:.2f} replays={entry['replays']}")
