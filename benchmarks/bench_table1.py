"""Benchmark: regenerate Table 1 (the 39-trace workload inventory).

Shape checks: every queue's mean and median match the published values
(the generator pins them), and the heavy-tail property (median << mean)
holds wherever the paper reports it.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1


def test_table1(benchmark, config, fresh):
    rows = run_once(benchmark, run_table1, config)

    assert len(rows) == 39
    for row in rows:
        if row.spec.key == ("lanl", "short"):
            continue  # end-of-log surge intentionally blows up the mean
        if row.spec.mean < row.spec.median:
            # lanl/schammpq, the paper's one near-symmetric queue: a
            # log-space generator cannot produce mean < median, so the mean
            # lands a few percent high.  Median still pinned.
            assert row.mean_error < 0.10, row.spec.label
        else:
            assert row.mean_error < 0.05, row.spec.label
        assert row.median_error < 0.05 or row.spec.median <= 10, row.spec.label

    heavy = sum(
        row.mean > 2 * row.median for row in rows if row.spec.median > 0
    )
    assert heavy >= 30  # "clear that the distribution ... is heavy-tailed"
