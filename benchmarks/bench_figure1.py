"""Benchmark: regenerate Figure 1 (cross-site bound series for one day).

Shape check: the paper's point is the orders-of-magnitude gap between the
sites — a user could predict a sub-minute-to-minutes start at TACC versus a
multi-day worst case at SDSC Datastar.  We assert the gap exceeds two
orders of magnitude on the day's median bound.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figure1 import render, run_figure1


def test_figure1(benchmark, config, fresh):
    series = run_once(benchmark, run_figure1, config)
    print()
    print(render(series))

    by_label = {s.label: s for s in series}
    datastar = by_label["datastar/normal"].summary()["median"]
    tacc = by_label["tacc2/normal"].summary()["median"]
    assert datastar > 100.0 * tacc
    assert datastar > 86400.0  # multi-day worst case at SDSC
    for s in series:
        assert s.times.size >= 10
        assert np.all(np.diff(s.times) >= 0)
