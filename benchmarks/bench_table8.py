"""Benchmark: regenerate Table 8 (day-in-the-life quantile ladder).

Shape checks: thirteen two-hour samples; the four bounds form an ordered
ladder (lower .25 <= upper .5 <= .75 <= .95); and the .95 bound sits in the
multi-hour-to-multi-day range the paper's table shows for datastar/normal.
"""

from benchmarks.conftest import run_once
from repro.experiments.table8 import render, run_table8


def test_table8(benchmark, config, fresh):
    rows = run_once(benchmark, run_table8, config)
    print()
    print(render(rows))

    assert [row.hour for row in rows] == list(range(0, 25, 2))
    for row in rows:
        values = [v for v in row.bounds.values() if v is not None]
        assert values == sorted(values)
    q95 = [row.bounds[".95 quantile"] for row in rows if row.bounds[".95 quantile"]]
    assert q95, "no .95 bounds sampled"
    assert all(3600.0 <= v <= 60 * 86400.0 for v in q95)
