"""Serving benchmark: sustained event throughput of the forecast daemon.

Spawns a real ``repro serve`` subprocess (durable configuration — journal,
checkpoints and all), drives it with the pipelined load generator over
several concurrent connections, and asserts the daemon sustains at least
1,000 events/second while answering interleaved forecast reads.  Writes
the ``BENCH_serve.json`` artifact (throughput + p50/p90/p99 latency) into
the repository root, mirroring the other perf-trajectory artifacts.

Marked ``slow`` like the other paper-scale benchmarks; run with
``pytest benchmarks/bench_serve.py -m slow``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.server import BENCH_SERVE_SCHEMA, run_bench

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

JOBS = 8000
CONNECTIONS = 8
WINDOW = 64
#: Throughput floor.  1,000 events/s leaves ~10x headroom below what the
#: daemon sustains on an unloaded dev box, but absolute throughput is a
#: property of the machine; override on slow/shared hardware rather than
#: letting the benchmark flake (BMBP_BENCH_MIN_EPS=200 pytest ... -m slow).
MIN_EVENTS_PER_SEC = float(os.environ.get("BMBP_BENCH_MIN_EPS", 1000.0))


def test_serve_throughput(benchmark):
    report = benchmark.pedantic(
        run_bench,
        kwargs={
            "jobs": JOBS,
            "connections": CONNECTIONS,
            "window": WINDOW,
            "artifact": ARTIFACT,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert report["schema"] == BENCH_SERVE_SCHEMA
    assert report["request_errors"] == 0
    assert report["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
        f"daemon sustained only {report['events_per_sec']:.0f} events/s"
    )
    latency = report["latency_ms"]
    assert latency["p50"] is not None and latency["p99"] is not None
    assert latency["p50"] <= latency["p99"]

    # The daemon's own books must agree with the client's: every mutation
    # the load generator sent was journaled.
    durability = report["server_metrics"]["durability"]
    assert durability["events_journaled"] == report["events"]

    assert ARTIFACT.exists()
    print()
    print(
        f"serve: {report['events_per_sec']:,.0f} events/s over "
        f"{CONNECTIONS} connections (p50 {latency['p50']:.1f} ms, "
        f"p99 {latency['p99']:.1f} ms) -> {ARTIFACT.name}"
    )
